"""Generalized (anonymized) tables, partitions and suppression.

Definition 1 of the paper: a partition of the microdata into QI-groups
defines a generalization in which, within each group, an attribute keeps its
value if every tuple of the group agrees on it and is replaced by a star
otherwise.  Sensitive values are always retained.

This module provides:

* :data:`STAR` — the sentinel for a suppressed cell;
* :class:`Partition` — a validated partition of row indices into QI-groups;
* :class:`GeneralizedTable` — the anonymized output, supporting both
  suppression cells (stars) and sub-domain cells (sets of codes) so that the
  single-dimensional baseline (TDS) and the multi-dimensional baseline
  (Mondrian) can share the same metrics code.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro import profiling
from repro.backend import vectorized_enabled
from repro.dataset.table import Schema, Table

__all__ = ["STAR", "GeneralizedTable", "Partition", "cell_size", "cell_contains"]


class _Star:
    """Singleton sentinel representing a suppressed QI value."""

    _instance: "_Star | None" = None

    def __new__(cls) -> "_Star":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    def __reduce__(self):  # keep the singleton across pickling
        return (_Star, ())


STAR = _Star()

#: A generalized cell is either an exact integer code, the :data:`STAR`
#: sentinel, or a frozenset of codes (a sub-domain, produced by the
#: single/multi-dimensional generalization baselines).
Cell = Any


def cell_size(cell: Cell, domain_size: int) -> int:
    """Number of domain values a generalized cell may stand for."""
    if cell is STAR:
        return domain_size
    if isinstance(cell, frozenset):
        return len(cell)
    return 1


def cell_contains(cell: Cell, code: int, domain_size: int) -> bool:
    """Whether ``code`` is consistent with the generalized ``cell``."""
    if cell is STAR:
        return 0 <= code < domain_size
    if isinstance(cell, frozenset):
        return code in cell
    return cell == code


class Partition:
    """A partition of the rows of a table into QI-groups.

    Groups are lists of row indices.  Empty groups are dropped.  The partition
    is validated: every row index must appear in exactly one group.
    """

    def __init__(self, groups: Iterable[Sequence[int]], n_rows: int) -> None:
        cleaned = [list(group) for group in groups if len(group) > 0]
        if vectorized_enabled():
            self._validate_vectorized(cleaned, n_rows)
        else:
            self._validate_reference(cleaned, n_rows)
        self._groups = cleaned
        self._n_rows = n_rows

    @staticmethod
    def _validate_vectorized(cleaned: list[list[int]], n_rows: int) -> None:
        """Coverage/disjointness checks via one concatenation and bincount."""
        if not cleaned:
            if n_rows:
                raise ValueError(f"partition covers 0 of {n_rows} rows ({n_rows} missing)")
            return
        members = np.concatenate([np.asarray(group, dtype=np.int64) for group in cleaned])
        total = int(members.size)
        if total and (members.min() < 0 or members.max() >= n_rows):
            bad = int(members.min()) if members.min() < 0 else int(members.max())
            raise ValueError(f"row index {bad} out of range for n={n_rows}")
        occurrences = np.bincount(members, minlength=n_rows)
        duplicates = np.flatnonzero(occurrences > 1)
        if duplicates.size:
            raise ValueError(
                f"row index {int(duplicates[0])} appears in more than one group"
            )
        if total != n_rows:
            missing = n_rows - total
            raise ValueError(f"partition covers {total} of {n_rows} rows ({missing} missing)")

    @staticmethod
    def _validate_reference(cleaned: list[list[int]], n_rows: int) -> None:
        """Pure-Python validation (one pass over every index)."""
        seen: set[int] = set()
        total = 0
        for group in cleaned:
            for index in group:
                if not 0 <= index < n_rows:
                    raise ValueError(f"row index {index} out of range for n={n_rows}")
                if index in seen:
                    raise ValueError(f"row index {index} appears in more than one group")
                seen.add(index)
            total += len(group)
        if total != n_rows:
            missing = n_rows - total
            raise ValueError(f"partition covers {total} of {n_rows} rows ({missing} missing)")

    @property
    def groups(self) -> list[list[int]]:
        # Trusted partitions may hold ndarray spans (zero-copy views over the
        # algorithm state's sort order); the public contract stays plain
        # lists, so normalize lazily here while the internal fast path
        # (:meth:`raw_groups`) keeps the arrays.
        groups = self._groups
        if any(isinstance(group, np.ndarray) for group in groups):
            groups = [
                group.tolist() if isinstance(group, np.ndarray) else group
                for group in groups
            ]
            self._groups = groups
        return groups

    def raw_groups(self) -> list:
        """The groups without list normalization (may contain ndarrays).

        Internal fast path for vectorized consumers
        (:meth:`GeneralizedTable.from_partition`) that concatenate the
        member indices anyway; treat the result as read-only.
        """
        return self._groups

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self):
        return iter(self.groups)

    def __getitem__(self, index: int) -> list[int]:
        return self.groups[index]

    def group_of(self) -> list[int]:
        """Return a list mapping each row index to its group id."""
        assignment = [-1] * self._n_rows
        for group_id, group in enumerate(self._groups):
            for index in group:
                assignment[index] = group_id
        return assignment

    def group_sizes(self) -> list[int]:
        return [len(group) for group in self._groups]

    @classmethod
    def trusted(cls, groups: list[list[int]], n_rows: int) -> "Partition":
        """Adopt ``groups`` without validation (internal fast path).

        For partitions that are valid *by construction* — the output of the
        three-phase algorithm, the Hilbert scan, or a QI-grouping — the
        O(n) coverage/disjointness check is pure overhead on the hot path.
        Groups must be non-empty, disjoint, cover ``0..n_rows-1``, and are
        adopted without copying; callers must relinquish ownership.  Groups
        may be ndarrays of row indices (zero-copy spans); the public
        :attr:`groups` property normalizes them to lists on first access.
        """
        partition = cls.__new__(cls)
        partition._groups = groups
        partition._n_rows = n_rows
        return partition

    @classmethod
    def single_group(cls, n_rows: int) -> "Partition":
        """The trivial partition with all rows in one QI-group."""
        return cls([list(range(n_rows))], n_rows)

    @classmethod
    def by_qi(cls, table: Table) -> "Partition":
        """The finest zero-star partition: group rows by identical QI vector."""
        return cls.trusted([list(rows) for rows in table.group_by_qi().values()], len(table))

    def is_l_diverse(self, table: Table, l: int) -> bool:
        """Whether every group of the partition is l-eligible w.r.t. ``table``."""
        for group in self._groups:
            counts = Counter(table.sa_value(index) for index in group)
            if max(counts.values()) * l > len(group):
                return False
        return True


class GeneralizedTable:
    """An anonymized table: generalized QI cells plus retained SA values.

    Instances are normally produced via :meth:`from_partition` (suppression,
    Definition 1) or by the generalization baselines, which supply sub-domain
    cells directly.
    """

    def __init__(
        self,
        schema: Schema,
        cells: Sequence[Sequence[Cell]],
        sa_values: Sequence[int],
        group_ids: Sequence[int],
    ) -> None:
        if not (len(cells) == len(sa_values) == len(group_ids)):
            raise ValueError("cells, sa_values and group_ids must have equal length")
        dimension = schema.dimension
        for row in cells:
            if len(row) != dimension:
                raise ValueError(f"generalized row {row!r} does not have {dimension} cells")
        self._schema = schema
        self._n = len(cells)
        self._cells = [tuple(row) for row in cells]
        self._sa_values = list(sa_values)
        self._group_ids = list(group_ids)
        self._reset_caches()

    def _reset_caches(self) -> None:
        # Lazily-filled caches; the table is immutable so none ever invalidates.
        self._groups_cache: dict[int, list[int]] | None = None
        self._star_mask: np.ndarray | None = None
        self._star_count: int | None = None
        self._suppressed_count: int | None = None
        self._width_matrix: np.ndarray | None = None
        # Columnar backing: set eagerly by from_partition (zero-copy from the
        # source table / group reduction), derived lazily from the lists
        # otherwise.  ``_sa_values`` / ``_group_ids`` may in turn be None and
        # materialize lazily from these arrays.
        self._sa_codes: np.ndarray | None = None
        self._group_ids_arr: np.ndarray | None = None
        self._group_sizes_arr: np.ndarray | None = None
        self._group_sa_counts_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # Per-group star flags ((g, d) bool) when every row of a group shares
        # one representative cells tuple — the from_partition invariant the
        # fused metrics sweep exploits.
        self._group_star: np.ndarray | None = None
        # Per-group surviving codes ((g, d) int, the reduction minima) —
        # together with ``_group_star`` the complete columnar form of a
        # suppression output (``columnar_publish``).
        self._group_reps: np.ndarray | None = None

    @property
    def _cells(self) -> list[tuple[Cell, ...]]:
        # Per-row cells materialize lazily: a from_partition output carries
        # only the (g, d) representatives and the row->group map until
        # something actually reads row tuples (CSV render, width matrix).
        # The bench/serving hot paths never do — group-level stats are all
        # seeded — so publish stays O(g + n) array work instead of building
        # n Python tuples.
        if self._cells_rows is None:
            representatives = [
                tuple(
                    STAR if starred else value
                    for value, starred in zip(values, flags)
                )
                for values, flags in zip(
                    self._group_reps.tolist(), self._group_star.tolist()
                )
            ]
            self._cells_rows = [
                representatives[group_id]
                for group_id in self.group_ids_array().tolist()
            ]
        return self._cells_rows

    @_cells.setter
    def _cells(self, rows: list[tuple[Cell, ...]] | None) -> None:
        self._cells_rows = rows

    @classmethod
    def _from_trusted(
        cls,
        schema: Schema,
        cells: list[tuple[Cell, ...]],
        sa_values,
        group_ids,
    ) -> "GeneralizedTable":
        """Adopt pre-validated row data without the defensive copies.

        Internal fast path for constructors that just built ``cells`` /
        ``group_ids`` themselves (``from_partition``); the containers are
        adopted as-is and must not be mutated afterwards by the caller.
        ``sa_values`` and ``group_ids`` may be ndarrays, in which case the
        Python lists materialize lazily on first list-view access.
        ``cells`` may be ``None`` when the caller seeds the columnar group
        form (``_group_reps`` / ``_group_star``) instead — the row tuples
        then materialize lazily on first ``_cells`` access.
        """
        table = cls.__new__(cls)
        table._schema = schema
        table._n = len(cells) if cells is not None else len(group_ids)
        table._cells = cells
        table._reset_caches()
        if isinstance(sa_values, np.ndarray):
            table._sa_values = None
            table._sa_codes = sa_values
        else:
            table._sa_values = list(sa_values)
        if isinstance(group_ids, np.ndarray):
            table._group_ids = None
            table._group_ids_arr = group_ids
        else:
            table._group_ids = group_ids
        return table

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_partition(cls, table: Table, partition: Partition) -> "GeneralizedTable":
        """Apply suppression (Definition 1) to ``table`` under ``partition``.

        Within each QI-group, attribute ``A_i`` keeps its value when all
        tuples of the group agree on it, and becomes :data:`STAR` otherwise.

        The group reduction runs on the kernel pool in group-aligned chunks
        (:func:`repro.core.kernels.grouped_min_max`, the ``publish-chunks``
        profiling sub-stage) and the result adopts the *columnar* group form
        — ``(g, d)`` surviving codes plus star flags plus the row->group map
        — without materializing per-row cell tuples; those build lazily on
        first row access.  Every consumer on the bench/serving hot path
        (star counts, group histograms, the privacy checks, the CSV result
        artifact) reads the columnar form directly.
        :meth:`from_partition_reference` is the retained serial oracle.
        """
        if not vectorized_enabled():
            return cls.from_partition_reference(table, partition)
        if partition.n_rows != len(table):
            raise ValueError("partition size does not match table size")
        n = len(table)
        if n == 0:
            return cls(table.schema, [], [], [])
        groups = partition.raw_groups()
        columns = table.qi_columns
        sizes = np.asarray([len(group) for group in groups], dtype=np.intp)
        members = np.concatenate([np.asarray(group, dtype=np.intp) for group in groups])
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        # An attribute survives in a group exactly when its min equals its max
        # over the group — one reduceat pair (chunked across the kernel pool
        # for large tables) replaces the per-row scan.
        from repro.core import kernels  # deferred: repro.core imports this module

        with profiling.profile_stage("publish-chunks"):
            minima, maxima = kernels.grouped_min_max(columns, members, starts)
        star = minima != maxima

        group_of = np.empty(n, dtype=np.intp)
        group_of[members] = np.repeat(np.arange(len(groups), dtype=np.intp), sizes)

        # Adopt the columnar data directly: the SA column is the source
        # table's (shared, read-only) code array, the group ids stay an
        # array, and the per-row cells stay unmaterialized; the list/tuple
        # views build lazily if something asks.
        result = cls._from_trusted(table.schema, None, table.sa_array, group_of)
        stars_per_group = star.sum(axis=1)
        result._star_count = int((stars_per_group * sizes).sum())
        result._suppressed_count = int(sizes[stars_per_group > 0].sum())
        result._group_sizes_arr = sizes
        result._group_star = star
        result._group_reps = minima
        return result

    @classmethod
    def from_partition_reference(cls, table: Table, partition: Partition) -> "GeneralizedTable":
        """Pure-Python suppression (the oracle for the vectorized path)."""
        if partition.n_rows != len(table):
            raise ValueError("partition size does not match table size")
        dimension = table.dimension
        cells: list[tuple[Cell, ...] | None] = [None] * len(table)
        group_ids = [0] * len(table)
        for group_id, group in enumerate(partition.groups):
            representative: list[Cell] = list(table.qi_row(group[0]))
            for index in group[1:]:
                row = table.qi_row(index)
                for position in range(dimension):
                    if representative[position] is not STAR and representative[position] != row[position]:
                        representative[position] = STAR
            generalized = tuple(representative)
            for index in group:
                cells[index] = generalized
                group_ids[index] = group_id
        return cls(table.schema, cells, list(table.sa_values), group_ids)

    # ----------------------------------------------------------------- basics

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return self._n

    @property
    def dimension(self) -> int:
        return self._schema.dimension

    def cell(self, row: int, position: int) -> Cell:
        return self._cells[row][position]

    def row_cells(self, row: int) -> tuple[Cell, ...]:
        return self._cells[row]

    @property
    def cell_rows(self) -> list[tuple[Cell, ...]]:
        """All generalized rows (a copy is *not* made; treat as read-only).

        Rows belonging to the same QI-group typically share one tuple object,
        which the metrics exploit to memoize per-row work by identity.
        """
        return self._cells

    def sa_value(self, row: int) -> int:
        if self._sa_values is not None:
            return self._sa_values[row]
        return int(self._sa_codes[row])

    @property
    def sa_values(self) -> list[int]:
        if self._sa_values is None:
            self._sa_values = self._sa_codes.tolist()
        return self._sa_values

    @property
    def group_ids(self) -> list[int]:
        if self._group_ids is None:
            self._group_ids = self._group_ids_arr.tolist()
        return self._group_ids

    # ------------------------------------------------------- columnar access

    def sa_codes(self) -> np.ndarray:
        """The sensitive column as an ``int`` array (zero-copy when possible)."""
        if self._sa_codes is None:
            self._sa_codes = np.asarray(self._sa_values, dtype=np.int64)
        return self._sa_codes

    def group_ids_array(self) -> np.ndarray:
        """The per-row group ids as an ``int`` array (zero-copy when possible)."""
        if self._group_ids_arr is None:
            self._group_ids_arr = np.asarray(self._group_ids, dtype=np.intp)
        return self._group_ids_arr

    def group_sizes_array(self) -> np.ndarray:
        """``sizes[group_id]`` for every group id in ``0..max(id)``.

        Ids absent from the table get size 0 (group ids are dense for
        :meth:`from_partition` output, but explicit constructors may skip
        ids).  Cached; treat as read-only.
        """
        if self._group_sizes_arr is None:
            gids = self.group_ids_array()
            if gids.size:
                self._group_sizes_arr = np.bincount(gids).astype(np.intp)
            else:
                self._group_sizes_arr = np.zeros(0, dtype=np.intp)
        return self._group_sizes_arr

    def group_sa_counts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse per-``(group, SA value)`` histogram triples.

        Returns ``(gids, values, counts)`` with one entry per distinct
        ``(group id, SA value)`` pair, sorted by ``(gid, value)`` — the
        columnar form of the per-group Counter histograms the privacy checks
        consume.  Computed via one bincount over the composite
        ``gid * m + sa`` code (dense) or ``np.unique`` when the composite
        domain is too large; cached.
        """
        if self._group_sa_counts_cache is None:
            gids = self.group_ids_array().astype(np.int64, copy=False)
            sa = self.sa_codes().astype(np.int64, copy=False)
            m = max(int(self._schema.sensitive.size), 1)
            if gids.size == 0:
                empty = np.zeros(0, dtype=np.int64)
                self._group_sa_counts_cache = (empty, empty, empty)
            else:
                combo = gids * m + sa
                span = (int(gids.max()) + 1) * m
                if span <= max(1 << 20, 4 * gids.size):
                    counts = np.bincount(combo, minlength=span)
                    present = np.flatnonzero(counts)
                    self._group_sa_counts_cache = (
                        present // m,
                        present % m,
                        counts[present],
                    )
                else:
                    present, counts = np.unique(combo, return_counts=True)
                    self._group_sa_counts_cache = (present // m, present % m, counts)
        return self._group_sa_counts_cache

    def group_star_flags(self) -> np.ndarray | None:
        """Per-group ``(g, d)`` star flags, or ``None`` when unknown.

        Seeded by :meth:`from_partition`, whose groups all share one
        representative cells tuple; explicit constructors (sub-domain
        baselines) leave it unset and the metrics fall back to row-level
        reductions.  Read-only.
        """
        return self._group_star

    def columnar_publish(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """The complete columnar group form, or ``None`` when unavailable.

        Returns ``(rep_codes, rep_star, group_of, sa_codes)``: per-group
        ``(g, d)`` surviving QI codes and star flags, the ``(n,)`` row→group
        map, and the ``(n,)`` SA codes.  Together these determine every
        published cell without materializing row tuples — the zero-copy
        result artifact serializes exactly these arrays.  Only tables built
        by :meth:`from_partition` carry the form (merged shards, store
        reconstructions, and explicit constructors return ``None``).  All
        arrays are shared and must be treated as read-only.
        """
        if self._group_reps is None or self._group_star is None:
            return None
        return (
            self._group_reps,
            self._group_star,
            self.group_ids_array(),
            self.sa_codes(),
        )

    def groups(self) -> dict[int, list[int]]:
        """Mapping of group id to the list of row indices in that group.

        Keys appear in first-appearance (minimum row index) order and every
        list is ascending — the exact insertion order the row-scan reference
        produces, which downstream consumers (spec rebuilds, pinned digests)
        rely on.  The result is cached (the table is immutable) and must be
        treated as read-only; the metrics all share one computation.
        """
        if self._groups_cache is None:
            if vectorized_enabled() and len(self):
                gids = self.group_ids_array()
                order = np.argsort(gids, kind="stable")
                sorted_gids = gids[order]
                boundaries = (
                    np.flatnonzero(sorted_gids[1:] != sorted_gids[:-1]) + 1
                )
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [sorted_gids.shape[0]]))
                # Stable sort → order[start] is each group's minimum row, so
                # ranking the blocks by it restores first-appearance order.
                appearance = np.argsort(order[starts], kind="stable")
                ids = sorted_gids[starts].tolist()
                ordered = order.tolist()
                starts_list = starts.tolist()
                ends_list = ends.tolist()
                self._groups_cache = {
                    ids[block]: ordered[starts_list[block] : ends_list[block]]
                    for block in appearance.tolist()
                }
            else:
                result: dict[int, list[int]] = {}
                for index, group_id in enumerate(self.group_ids):
                    result.setdefault(group_id, []).append(index)
                self._groups_cache = result
        return self._groups_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeneralizedTable(n={len(self)}, d={self.dimension}, "
            f"groups={len(set(self.group_ids))}, stars={self.star_count()})"
        )

    # ------------------------------------------------------------ information

    def star_mask(self) -> np.ndarray:
        """Boolean ``(n, d)`` matrix marking the suppressed cells.

        Tables produced by :meth:`from_partition` derive this by one gather
        from the per-group star flags; for tables built from explicit cells
        the mask is derived once and cached.  Rows of a group share one cells
        tuple, so the derivation memoizes per distinct tuple (by identity —
        the tuples are pinned alive by ``self._cells``).
        """
        if self._star_mask is None and self._group_star is not None:
            self._star_mask = self._group_star[self.group_ids_array()]
        if self._star_mask is None:
            memo: dict[int, list[bool]] = {}
            rows: list[list[bool]] = []
            for cells in self._cells:
                flags = memo.get(id(cells))
                if flags is None:
                    flags = [cell is STAR for cell in cells]
                    memo[id(cells)] = flags
                rows.append(flags)
            self._star_mask = np.asarray(rows, dtype=bool).reshape(
                len(self._cells), self._schema.dimension
            )
        return self._star_mask

    def width_matrix(self) -> np.ndarray:
        """``(n, d)`` matrix of :func:`cell_size` values (cached).

        Entry ``(i, j)`` is the number of domain values cell ``j`` of row
        ``i`` may stand for: 1 for exact cells, the sub-domain size for
        frozensets, the full domain size for stars.
        """
        if self._width_matrix is None:
            sizes = [attribute.size for attribute in self._schema.qi]
            memo: dict[int, list[int]] = {}
            rows: list[list[int]] = []
            for cells in self._cells:
                widths = memo.get(id(cells))
                if widths is None:
                    widths = [cell_size(cell, size) for cell, size in zip(cells, sizes)]
                    memo[id(cells)] = widths
                rows.append(widths)
            self._width_matrix = np.asarray(rows, dtype=np.int64).reshape(
                len(self._cells), self._schema.dimension
            )
        return self._width_matrix

    def star_count(self) -> int:
        """Total number of suppressed QI cells (the Problem 1 objective)."""
        if self._star_count is None:
            if vectorized_enabled():
                self._star_count = int(np.count_nonzero(self.star_mask()))
            else:
                self._star_count = self.star_count_reference()
        return self._star_count

    def star_count_reference(self) -> int:
        """Pure-Python star count (the oracle for the vectorized path)."""
        return sum(1 for row in self._cells for cell in row if cell is STAR)

    def suppressed_tuple_count(self) -> int:
        """Number of rows with at least one star (the Problem 2 objective)."""
        if self._suppressed_count is None:
            if vectorized_enabled():
                self._suppressed_count = int(self.star_mask().any(axis=1).sum())
            else:
                self._suppressed_count = self.suppressed_tuple_count_reference()
        return self._suppressed_count

    def suppressed_tuple_count_reference(self) -> int:
        """Pure-Python suppressed-row count (the oracle for the vectorized path)."""
        return sum(1 for row in self._cells if any(cell is STAR for cell in row))

    def generalized_cell_count(self) -> int:
        """Number of QI cells that are not exact values (stars or sub-domains)."""
        return sum(
            1 for row in self._cells for cell in row if cell is STAR or isinstance(cell, frozenset)
        )

    # --------------------------------------------------------------- privacy

    def is_l_diverse(self, l: int) -> bool:
        """Whether every QI-group satisfies l-diversity (Definition 2).

        One sweep over the sparse per-(group, SA) histogram triples — per
        group, the tallest SA count times ``l`` must not exceed the group
        size — instead of a Python Counter per group.
        """
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        if not vectorized_enabled():
            return self.is_l_diverse_reference(l)
        if not len(self):
            return True
        gids = self.group_ids_array()
        if int(gids.min()) < 0:  # non-dense explicit ids: stay on the oracle
            return self.is_l_diverse_reference(l)
        triple_gids, _values, counts = self.group_sa_counts()
        starts = np.concatenate(
            ([0], np.flatnonzero(triple_gids[1:] != triple_gids[:-1]) + 1)
        )
        heights = np.maximum.reduceat(counts, starts)
        sizes = np.add.reduceat(counts, starts)
        return not bool(np.any(heights * l > sizes))

    def is_l_diverse_reference(self, l: int) -> bool:
        """Pure-Python l-diversity check (the oracle for the vectorized path)."""
        if l < 1:
            raise ValueError(f"l must be >= 1, got {l}")
        sa_values = self.sa_values
        for rows in self.groups().values():
            counts = Counter(sa_values[index] for index in rows)
            if max(counts.values()) * l > len(rows):
                return False
        return True

    def is_k_anonymous(self, k: int) -> bool:
        """Whether every QI-group has at least ``k`` rows."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not vectorized_enabled():
            return self.is_k_anonymous_reference(k)
        if not len(self):
            return True
        gids = self.group_ids_array()
        if int(gids.min()) < 0:  # non-dense explicit ids: stay on the oracle
            return self.is_k_anonymous_reference(k)
        sizes = self.group_sizes_array()
        present = sizes[sizes > 0]
        return bool((present >= k).all())

    def is_k_anonymous_reference(self, k: int) -> bool:
        """Pure-Python k-anonymity check (the oracle for the vectorized path)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return all(len(rows) >= k for rows in self.groups().values())

    # ---------------------------------------------------------------- display

    def decoded_record(self, row: int) -> dict[str, Any]:
        """Return a row with raw values; stars render as ``'*'`` and sub-domains as sorted tuples."""
        record: dict[str, Any] = {}
        for position, attribute in enumerate(self._schema.qi):
            cell = self._cells[row][position]
            if cell is STAR:
                record[attribute.name] = "*"
            elif isinstance(cell, frozenset):
                record[attribute.name] = tuple(sorted(attribute.decode(code) for code in cell))
            else:
                record[attribute.name] = attribute.decode(cell)
        record[self._schema.sensitive.name] = self._schema.sensitive.decode(self.sa_value(row))
        return record

    def decoded_records(self) -> list[dict[str, Any]]:
        return [self.decoded_record(row) for row in range(len(self))]
