"""Microdata substrate: tables, schemas, generalized tables and datasets."""

from repro.dataset.generalized import STAR, GeneralizedTable, Partition
from repro.dataset.table import Attribute, Schema, Table

__all__ = [
    "Attribute",
    "GeneralizedTable",
    "Partition",
    "STAR",
    "Schema",
    "Table",
]
