"""Exception types shared across the package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "IneligibleTableError",
    "AlgorithmInvariantError",
    "RegistryError",
    "DuplicateRegistrationError",
    "UnknownEntryError",
    "DataSourceError",
    "ShardMergeError",
    "VerificationError",
    "WorkerCrashError",
    "JobTimeoutError",
]


class ReproError(Exception):
    """Base class for all package-specific errors."""


class IneligibleTableError(ReproError):
    """Raised when a table cannot be anonymized for the requested ``l``.

    By Lemma 1 (monotonicity) an l-diverse generalization exists if and only
    if the microdata table itself is l-eligible; every algorithm in the
    package checks this precondition and raises this error otherwise.
    """


class AlgorithmInvariantError(ReproError):
    """Raised when an internal invariant proven in the paper is violated.

    These checks guard the implementation against bugs (e.g. the greedy set
    cover of phase three failing to make progress, which Lemma 7 proves
    impossible); they should never trigger on valid inputs.
    """


class RegistryError(ReproError):
    """Base class for algorithm/metric registry errors."""


class DuplicateRegistrationError(RegistryError, ValueError):
    """Raised when two entries are registered under the same name."""


class UnknownEntryError(RegistryError, KeyError):
    """Raised when a registry lookup misses.

    Inherits :class:`KeyError` so callers that guarded the old hardcoded
    algorithm dicts with ``except KeyError`` keep working unchanged.
    """

    def __str__(self) -> str:  # KeyError repr()s its argument; keep the message readable
        return self.args[0] if self.args else super().__str__()


class DataSourceError(ReproError):
    """Raised when a :class:`~repro.engine.sources.DataSource` cannot load its table."""


class VerificationError(ReproError):
    """Raised when a published table fails the engine's l-diversity verification.

    Every registered algorithm proves its output l-diverse, so this firing
    on an unsharded run means an algorithm bug; on a sharded run it means a
    sharding/merge invariant was broken.
    """


class WorkerCrashError(ReproError):
    """A pool worker died mid-job (segfault, OOM kill, injected fault).

    Recorded as the attempt's error by the server's retry machinery; the
    attempt is retryable — the crash says nothing about the job itself until
    the attempt budget is exhausted and the job is quarantined.
    """


class JobTimeoutError(ReproError):
    """A job attempt exceeded the server's per-job wall-clock budget.

    The attempt is killed and retried; like :class:`WorkerCrashError` this is
    a retryable attempt error, not a terminal job verdict.
    """


class ShardMergeError(ReproError):
    """Raised when shard outputs cannot be merged into a valid published table.

    Covers structural problems (outputs not covering every row, shard/output
    count mismatches) and, when :func:`repro.engine.sharding.merge_shard_outputs`
    is asked to verify, a merged table violating l-diversity.  Shards are
    unions of complete QI-groups and each shard output is l-diverse, so the
    merged table is l-diverse by construction; this error firing means a
    sharding/merge invariant was broken.
    """
