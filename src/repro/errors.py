"""Exception types shared across the package."""

from __future__ import annotations

__all__ = ["ReproError", "IneligibleTableError", "AlgorithmInvariantError"]


class ReproError(Exception):
    """Base class for all package-specific errors."""


class IneligibleTableError(ReproError):
    """Raised when a table cannot be anonymized for the requested ``l``.

    By Lemma 1 (monotonicity) an l-diverse generalization exists if and only
    if the microdata table itself is l-eligible; every algorithm in the
    package checks this precondition and raises this error otherwise.
    """


class AlgorithmInvariantError(ReproError):
    """Raised when an internal invariant proven in the paper is violated.

    These checks guard the implementation against bugs (e.g. the greedy set
    cover of phase three failing to make progress, which Lemma 7 proves
    impossible); they should never trigger on valid inputs.
    """
