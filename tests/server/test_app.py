"""Handler tests over a loopback server: lifecycle, validation, backpressure."""

from __future__ import annotations

import csv
import io
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.client import Client, ClientError, JobFailedError
from repro.server.faults import FaultPlan, clear_plan, install_plan
from repro.privacy.spec import EntropyLDiversity, KAnonymity, privacy_registry
from repro.service import JobLedger, verify_csv_l_diverse

from server_harness import ServerHandle


def _submit_hospital(client: Client, hospital_rows, **fields) -> str:
    rows, qi, sa = hospital_rows
    fields.setdefault("l", 2)
    fields.setdefault("algorithm", "TP")
    return client.submit(rows=rows, qi=qi, sa=sa, **fields)


class TestLifecycle:
    def test_submit_wait_result_roundtrip(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        record, result = client.submit_and_wait(
            rows=rows, qi=qi, sa=sa, l=2, algorithm="TP", metrics=["kl"]
        )
        assert record["status"] == "done"
        assert record["n"] == len(rows)
        assert result["verified"] is True
        assert result["header"] == qi + [sa]
        assert len(result["rows"]) == len(rows)
        assert "kl" in result["metric_values"]
        # the sensitive column must survive as a multiset
        assert sorted(row[-1] for row in result["rows"]) == sorted(
            row[sa] for row in rows
        )

    def test_result_as_csv_is_l_diverse(self, client, hospital_rows, tmp_path):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        text = client.result_csv(job_id)
        path = tmp_path / "published.csv"
        path.write_text(text)
        _rows, qi, sa = hospital_rows
        assert verify_csv_l_diverse(path, qi, sa, 2)

    def test_repeated_submission_hits_the_store(self, client, hospital_rows):
        first = _submit_hospital(client, hospital_rows)
        client.wait(first)
        assert client.result(first)["store_hit"] is False
        second = _submit_hospital(client, hospital_rows)
        client.wait(second)
        assert second != first
        assert client.result(second)["store_hit"] is True

    def test_lifecycle_is_persisted_to_the_ledger(self, server, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        ledger = JobLedger(server.server.workspace.jobs_path)
        statuses = [record.status for record in ledger.history(job_id)]
        assert statuses == ["queued", "running", "done"]

    def test_synthetic_source_job(self, client):
        record, result = client.submit_and_wait(
            source={"kind": "synthetic", "dataset": "SAL", "n": 300, "dimension": 3},
            l=4,
        )
        assert record["label"] == "SAL-3@300"
        assert result["n"] == 300

    def test_csv_upload_job(self, client):
        text = "Age,Gender,Disease\n" + "\n".join(
            f"{20 + i % 4},{'MF'[i % 2]},D{i % 3}" for i in range(24)
        )
        record, result = client.submit_and_wait(
            csv_text=text, qi=["Age", "Gender"], sa="Disease", l=2
        )
        assert record["status"] == "done"
        assert result["n"] == 24

    def test_ineligible_table_fails_the_job(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        job_id = client.submit(rows=rows, qi=qi, sa=sa, l=len(rows) + 1)
        with pytest.raises(JobFailedError) as info:
            client.wait(job_id)
        assert info.value.record["status"] == "failed"
        assert "IneligibleTableError" in info.value.record["error"]
        # a failed job has no result
        with pytest.raises(ClientError) as error:
            client.result(job_id)
        assert error.value.status == 409

    def test_job_metrics_endpoint_excludes_rows(self, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows, metrics=["stars"])
        client.wait(job_id)
        payload = client.job_metrics(job_id)
        assert "rows" not in payload and "header" not in payload
        assert payload["metric_values"]["stars"] == payload["stars"]

    def test_metrics_only_job_skips_the_table(self, client, hospital_rows):
        """include_rows=false: the table is never rendered/kept; /result says so."""
        job_id = _submit_hospital(
            client, hospital_rows, metrics=["stars"], include_rows=False
        )
        client.wait(job_id)
        payload = client.job_metrics(job_id)
        assert payload["metric_values"]["stars"] == payload["stars"]
        with pytest.raises(ClientError) as error:
            client.result(job_id)
        assert error.value.status == 409
        assert "include_rows" in error.value.message
        # the submit_and_wait helper knows to fetch /metrics instead
        rows, qi, sa = hospital_rows
        record, payload = client.submit_and_wait(
            rows=rows, qi=qi, sa=sa, l=2, algorithm="TP", include_rows=False
        )
        assert record["status"] == "done"
        assert "rows" not in payload and "header" not in payload

    def test_jobs_listing_contains_submissions(self, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        assert job_id in [job["id"] for job in client.jobs()]


class TestValidation:
    def _raw_post(self, server, body: bytes, content_type="application/json", path="/v1/jobs"):
        request = urllib.request.Request(
            server.base_url + path,
            data=body,
            headers={"Content-Type": content_type},
            method="POST",
        )
        return urllib.request.urlopen(request, timeout=10)

    def test_bad_json_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, b"{not json")
        assert error.value.code == 400
        assert "JSON" in json.loads(error.value.read())["error"]

    def test_non_object_json_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, b"[1, 2]")
        assert error.value.code == 400

    def test_unknown_algorithm_is_400(self, client, hospital_rows):
        with pytest.raises(ClientError) as error:
            _submit_hospital(client, hospital_rows, algorithm="NoSuch")
        assert error.value.status == 400
        assert "unknown algorithm" in error.value.message

    def test_unknown_metric_is_400(self, client, hospital_rows):
        with pytest.raises(ClientError) as error:
            _submit_hospital(client, hospital_rows, metrics=["nope"])
        assert error.value.status == 400

    def test_l_below_two_is_400(self, client, hospital_rows):
        with pytest.raises(ClientError) as error:
            _submit_hospital(client, hospital_rows, l=1)
        assert error.value.status == 400

    def test_rows_and_source_together_is_400(self, server, hospital_rows):
        rows, qi, sa = hospital_rows
        body = json.dumps(
            {"rows": rows, "qi": qi, "sa": sa, "l": 2, "source": {"kind": "synthetic"}}
        ).encode()
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, body)
        assert error.value.code == 400
        assert "exactly one" in json.loads(error.value.read())["error"]

    def test_missing_qi_is_400(self, client, hospital_rows):
        rows, _qi, sa = hospital_rows
        with pytest.raises(ClientError) as error:
            client.submit(rows=rows, qi=[], sa=sa, l=2)
        assert error.value.status == 400

    def test_sa_overlapping_qi_is_400(self, client, hospital_rows):
        rows, qi, _sa = hospital_rows
        with pytest.raises(ClientError) as error:
            client.submit(rows=rows, qi=qi, sa=qi[0], l=2)
        assert error.value.status == 400

    def test_unknown_source_kind_is_400(self, client):
        with pytest.raises(ClientError) as error:
            client.submit(source={"kind": "sql"}, l=2)
        assert error.value.status == 400

    def test_non_integer_seed_is_400_not_500(self, server, hospital_rows):
        rows, qi, sa = hospital_rows
        for payload in (
            {"rows": rows, "qi": qi, "sa": sa, "l": 2, "seed": "abc"},
            {"source": {"kind": "synthetic", "seed": "abc"}, "l": 2},
            {"source": {"kind": "synthetic", "n": "many"}, "l": 2},
        ):
            with pytest.raises(urllib.error.HTTPError) as error:
                self._raw_post(server, json.dumps(payload).encode())
            assert error.value.code == 400, payload

    def test_csv_upload_missing_column_is_400(self, client):
        with pytest.raises(ClientError) as error:
            client.submit(csv_text="Age,Disease\n30,flu\n", qi=["Zip"], sa="Disease", l=2)
        assert error.value.status == 400
        assert "missing columns" in error.value.message

    def test_unsharded_algorithm_with_shards_is_400(self, server, monkeypatch):
        """Capability metadata is enforced at submit time, before queueing."""
        import repro.server.app as app_module
        from repro.engine.registry import AlgorithmInfo
        from repro.server import HttpError

        info = AlgorithmInfo(
            name="NoShard", runner=lambda table, l: None, supports_sharding=False
        )

        class StubRegistry:
            def get(self, name):
                return info

        monkeypatch.setattr(app_module, "algorithm_registry", StubRegistry())
        with pytest.raises(HttpError) as error:
            server.server._base_spec({"algorithm": "NoShard", "l": 2, "shards": 4})
        assert error.value.status == 400
        assert "does not support sharded execution" in error.value.message

    def test_oversized_payload_is_413(self, tmp_path):
        handle = ServerHandle(workspace=tmp_path / "ws-small", max_body_bytes=1024)
        try:
            with pytest.raises(urllib.error.HTTPError) as error:
                self._raw_post(handle, b"x" * 4096)
            assert error.value.code == 413
        finally:
            handle.stop()

    def test_include_rows_must_be_boolean(self, server, hospital_rows):
        rows, qi, sa = hospital_rows
        body = json.dumps(
            {"rows": rows, "qi": qi, "sa": sa, "l": 2, "include_rows": "yes"}
        ).encode()
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, body)
        assert error.value.code == 400

    def test_slow_clients_time_out_with_408(self, tmp_path):
        """A socket that never completes its request must not pin a task forever."""
        import socket

        handle = ServerHandle(
            workspace=tmp_path / "ws-slow", request_timeout_seconds=0.2
        )
        try:
            with socket.create_connection((handle.host, handle.port), timeout=10) as sock:
                sock.sendall(b"POST /v1/jobs HTTP/1.1\r\n")  # headers never finish
                sock.settimeout(10)
                response = sock.recv(4096)
            assert b"408" in response.split(b"\r\n", 1)[0]
        finally:
            handle.stop()

    def test_unknown_path_is_404_and_wrong_method_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(server.base_url + "/v2/nope", timeout=10)
        assert error.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, b"{}", path="/v1/algorithms")
        assert error.value.code == 405
        assert error.value.headers["Allow"] == "GET"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ClientError) as error:
            client.status("job-9999")
        assert error.value.status == 404

    def test_result_of_running_job_is_409(self, server, client, hospital_rows):
        server.run(server.server.pool.pause)
        try:
            job_id = _submit_hospital(client, hospital_rows)
            with pytest.raises(ClientError) as error:
                client.result(job_id)
            assert error.value.status == 409
        finally:
            server.run(server.server.pool.resume)
            client.wait(job_id)


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-bp", workers=1, queue_cap=2, paused=True
        )
        client = Client(handle.base_url, client_id="bp", retries=0)
        try:
            accepted = [_submit_hospital(client, hospital_rows) for _ in range(2)]
            with pytest.raises(ClientError) as error:
                _submit_hospital(client, hospital_rows)
            assert error.value.status == 429
            assert "queue is full" in error.value.message
            handle.run(handle.server.pool.resume)
            for job_id in accepted:
                assert client.wait(job_id)["status"] == "done"
            health = client.health()
            assert health["jobs"]["rejected_queue_full"] == 1
        finally:
            handle.stop()

    def test_retry_after_header_is_set_on_queue_full(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-bp2", workers=1, queue_cap=1, paused=True
        )
        rows, qi, sa = hospital_rows
        try:
            Client(handle.base_url, retries=0).submit(rows=rows, qi=qi, sa=sa, l=2)
            body = json.dumps(
                {"rows": rows, "qi": qi, "sa": sa, "l": 2}
            ).encode()
            request = urllib.request.Request(
                handle.base_url + "/v1/jobs", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=10)
            assert error.value.code == 429
            assert int(error.value.headers["Retry-After"]) >= 1
        finally:
            handle.run(handle.server.pool.resume)
            handle.stop()

    def test_client_retries_through_backpressure(self, tmp_path, hospital_rows):
        """A retrying client eventually lands every submission despite a tiny queue."""
        handle = ServerHandle(workspace=tmp_path / "ws-bp3", workers=2, queue_cap=1)
        client = Client(
            handle.base_url, client_id="patient", retries=20, backoff_seconds=0.05
        )
        try:
            job_ids = [_submit_hospital(client, hospital_rows) for _ in range(6)]
            for job_id in job_ids:
                assert client.wait(job_id)["status"] == "done"
        finally:
            handle.stop()

    def test_per_client_rate_limit_is_429(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-rate", rate_limit=0.001, rate_burst=2
        )
        client = Client(handle.base_url, client_id="greedy", retries=0)
        other = Client(handle.base_url, client_id="other", retries=0)
        try:
            for _ in range(2):
                _submit_hospital(client, hospital_rows)
            with pytest.raises(ClientError) as error:
                _submit_hospital(client, hospital_rows)
            assert error.value.status == 429
            assert "rate limited" in error.value.message
            # buckets are per client: another identity still gets through
            _submit_hospital(other, hospital_rows)
            assert client.health()["jobs"]["rejected_rate_limited"] == 1
        finally:
            handle.stop()


class TestCancel:
    def test_cancel_queued_job(self, server, client, hospital_rows):
        server.run(server.server.pool.pause)
        job_id = _submit_hospital(client, hospital_rows)
        record = client.cancel(job_id)
        assert record["status"] == "cancelled"
        server.run(server.server.pool.resume)
        assert client.status(job_id)["status"] == "cancelled"
        with pytest.raises(ClientError) as error:
            client.result(job_id)
        assert error.value.status == 409
        ledger = JobLedger(server.server.workspace.jobs_path)
        assert [r.status for r in ledger.history(job_id)] == ["queued", "cancelled"]

    def test_cancel_done_job_is_409(self, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        with pytest.raises(ClientError) as error:
            client.cancel(job_id)
        assert error.value.status == 409

    def test_shutdown_cancels_queued_jobs(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-drain", workers=1, queue_cap=4, paused=True
        )
        client = Client(handle.base_url, retries=0)
        job_ids = [_submit_hospital(client, hospital_rows) for _ in range(3)]
        handle.stop()
        ledger = JobLedger(handle.server.workspace.jobs_path)
        assert {ledger.get(job_id).status for job_id in job_ids} == {"cancelled"}

    def test_cancel_during_the_submission_window_succeeds(
        self, server, client, hospital_rows
    ):
        """A job visible as 'queued' but not yet handed to the pool (its spool
        write is still in flight) must be cancellable, not answer 409."""
        handle = server
        record = handle.server.ledger.create(
            label="in-flight", algorithm="TP", l=2, client="pytest"
        )
        handle.run(handle.server._remember, record.id, record)
        handle.run(handle.server._pending_submits.add, record.id)
        try:
            cancelled = client.cancel(record.id)
            assert cancelled["status"] == "cancelled"
            assert handle.run(lambda: record.id in handle.server._cancel_requested)
            assert client.status(record.id)["status"] == "cancelled"
        finally:
            handle.run(handle.server._pending_submits.discard, record.id)
            handle.run(handle.server._cancel_requested.discard, record.id)

    def test_result_survives_a_failing_terminal_ledger_write(
        self, server, client, hospital_rows
    ):
        """Disk-full on the 'done' append must not leave the job 'running'
        forever or drop the computed result."""
        ledger = server.server.ledger
        real = ledger.transition

        def flaky(job_id, status, **updates):
            if status == "done":
                raise OSError("no space left on device")
            return real(job_id, status, **updates)

        ledger.transition = flaky
        try:
            job_id = _submit_hospital(client, hospital_rows)
            record = client.wait(job_id)
            assert record["status"] == "done"
            assert "ledger append failed" in record["error"]
            assert client.result(job_id)["verified"] is True
        finally:
            ledger.transition = real

    def test_failed_spool_write_rolls_the_submission_back(
        self, tmp_path, hospital_rows
    ):
        """If the upload can't be spooled, the just-created ledger record must
        not be left 'queued' forever — the pool never saw the job."""
        handle = ServerHandle(workspace=tmp_path / "ws-spool")
        client = Client(handle.base_url, retries=0)
        try:
            # make the workspace's tmp/ path un-creatable: it's a file
            (handle.server.workspace.root / "tmp").write_text("not a directory")
            with pytest.raises(ClientError) as error:
                _submit_hospital(client, hospital_rows)
            assert error.value.status == 500
            assert "spool" in error.value.message
            records = JobLedger(handle.server.workspace.jobs_path).list()
            assert [record.status for record in records] == ["cancelled"]
        finally:
            handle.stop()

    def test_result_survives_a_failing_running_ledger_write(
        self, server, client, hospital_rows
    ):
        """A transient failure on the 'running' append leaves the ledger
        behind (still 'queued'); the later done-transition's JobStateError
        must synthesize the terminal state, not reinstall the stale record."""
        ledger = server.server.ledger
        real = ledger.transition

        def flaky(job_id, status, **updates):
            if status == "running":
                raise OSError("no space left on device")
            return real(job_id, status, **updates)

        ledger.transition = flaky
        try:
            job_id = _submit_hospital(client, hospital_rows)
            record = client.wait(job_id)
            assert record["status"] == "done"
            assert client.result(job_id)["verified"] is True
        finally:
            ledger.transition = real

    def test_out_of_band_ledger_cancel_refreshes_the_resident_record(
        self, server, client, hospital_rows
    ):
        """A CLI `jobs cancel` racing the server must not freeze the job's
        API status on a stale non-terminal in-memory record."""
        server.run(server.server.pool.pause)
        job_id = _submit_hospital(client, hospital_rows)
        # out-of-band writer (e.g. `ldiversity jobs cancel`) on the same ledger
        JobLedger(server.server.workspace.jobs_path).cancel(job_id)
        server.run(server.server.pool.resume)
        deadline = time.monotonic() + 30
        while client.status(job_id)["status"] != "cancelled":
            assert time.monotonic() < deadline, client.status(job_id)
            time.sleep(0.01)
        with pytest.raises(ClientError) as error:
            client.result(job_id)
        assert error.value.status == 409

    def test_shutdown_closes_jobs_that_outlive_the_grace_window(self, tmp_path):
        """A run interrupted by shutdown must not stay 'running' in the ledger."""
        handle = ServerHandle(workspace=tmp_path / "ws-grace", workers=1, queue_cap=4)
        client = Client(handle.base_url, retries=0)
        # Wedge the worker with a delay fault so the run reliably outlives the
        # grace window — the engine is fast enough that a plain job can finish
        # inside it.
        install_plan(FaultPlan(delay_seconds=3.0, delay_seeds=(777,)))
        try:
            job_id = client.submit(
                source={"kind": "synthetic", "n": 30_000, "dimension": 3},
                l=2,
                seed=777,
            )
            deadline = time.monotonic() + 30
            while client.status(job_id)["status"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.005)
            handle.call(handle.server.shutdown(grace_seconds=0.01))
            record = JobLedger(handle.server.workspace.jobs_path).get(job_id)
            assert record.status == "cancelled"
            assert "before the result was recorded" in record.error
        finally:
            clear_plan()
            handle.stop()


class TestServerSideCsvSources:
    CSV_TEXT = "Age,Gender,Disease\n" + "\n".join(
        f"{20 + i % 4},{'MF'[i % 2]},D{i % 3}" for i in range(24)
    )
    SOURCE_FIELDS = {"qi": ["Age", "Gender"], "sa": "Disease"}

    def test_csv_sources_are_rejected_without_a_data_dir(self, client, tmp_path):
        readable = tmp_path / "readable.csv"
        readable.write_text(self.CSV_TEXT)
        with pytest.raises(ClientError) as error:
            client.submit(
                source={"kind": "csv", "path": str(readable), **self.SOURCE_FIELDS}, l=2
            )
        assert error.value.status == 403
        assert "disabled" in error.value.message

    def test_data_dir_serves_contained_paths_and_rejects_escapes(self, tmp_path):
        data_dir = tmp_path / "data"
        data_dir.mkdir()
        (data_dir / "micro.csv").write_text(self.CSV_TEXT)
        (tmp_path / "outside.csv").write_text(self.CSV_TEXT)
        handle = ServerHandle(workspace=tmp_path / "ws-data", data_dir=data_dir)
        client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
        try:
            # a path inside the allowlist runs (relative to the data dir)
            record, result = client.submit_and_wait(
                source={"kind": "csv", "path": "micro.csv", **self.SOURCE_FIELDS}, l=2
            )
            assert record["status"] == "done"
            assert result["n"] == 24
            # ..-traversal out of the data dir is refused, even though the
            # target exists and is readable by the server user
            for escape in ("../outside.csv", str(tmp_path / "outside.csv")):
                with pytest.raises(ClientError) as error:
                    client.submit(
                        source={"kind": "csv", "path": escape, **self.SOURCE_FIELDS}, l=2
                    )
                assert error.value.status == 403, escape
                assert "outside" in error.value.message
            # a missing file inside the allowlist is still a plain 400
            with pytest.raises(ClientError) as error:
                client.submit(
                    source={"kind": "csv", "path": "nope.csv", **self.SOURCE_FIELDS}, l=2
                )
            assert error.value.status == 400
        finally:
            handle.stop()


class TestResidency:
    def test_spooled_uploads_are_deleted_after_the_job(self, server, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        tmp_dir = server.server.workspace.tmp_dir
        assert not list(tmp_dir.glob("upload-*.csv"))

    def test_cancelled_jobs_drop_their_spool(self, server, client, hospital_rows):
        server.run(server.server.pool.pause)
        try:
            job_id = _submit_hospital(client, hospital_rows)
            client.cancel(job_id)
            assert not list(server.server.workspace.tmp_dir.glob(f"upload-{job_id}.csv"))
        finally:
            server.run(server.server.pool.resume)

    def test_resident_results_are_bounded(self, tmp_path, hospital_rows):
        """Old terminal results are evicted; status falls back to the ledger."""
        handle = ServerHandle(
            workspace=tmp_path / "ws-resident", workers=1, queue_cap=4,
            max_resident_jobs=1,
        )
        client = Client(handle.base_url, retries=10, backoff_seconds=0.02)
        try:
            first = _submit_hospital(client, hospital_rows)
            client.wait(first)
            second = _submit_hospital(client, hospital_rows, algorithm="TP+")
            client.wait(second)
            # cap is clamped to queue_cap + workers + 1 = 6; fill past it
            more = [
                _submit_hospital(client, hospital_rows, l=2, seed=index)
                for index in range(6)
            ]
            for job_id in more:
                client.wait(job_id)
            assert len(handle.server._jobs) <= handle.server.max_resident_jobs
            # evicted jobs still answer status from the ledger...
            assert client.status(first)["status"] == "done"
            # ...but their result is no longer resident
            with pytest.raises(ClientError) as error:
                client.result(first)
            assert error.value.status == 404
        finally:
            handle.stop()


class TestIntrospection:
    def test_health_reports_version_and_counters(self, client, hospital_rows):
        from repro import __version__

        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["jobs"]["submitted"] >= 1
        assert health["jobs"]["done"] >= 1

    def test_algorithm_registry_view(self, client):
        names = {entry["name"] for entry in client.algorithms()}
        assert {"TP", "TP+", "Hilbert"} <= names
        for entry in client.algorithms():
            assert set(entry) == {
                "name", "description", "complexity", "approximation",
                "supports_sharding", "deterministic",
            }

    def test_metric_registry_view(self, client):
        names = {entry["name"] for entry in client.metrics()}
        assert {"stars", "kl"} <= names

    def test_plan_endpoint_explains_decision(self, client):
        decision = client.plan(n=50_000, l=4, algorithm="TP+", d=3)
        assert decision["shards"] >= 1
        assert decision["workers"] >= 1
        assert decision["backend"] in ("numpy", "reference")
        assert decision["reasons"]
        assert decision["candidates"]

    def test_plan_unknown_algorithm_is_400(self, client):
        with pytest.raises(ClientError) as error:
            client.plan(n=100, l=2, algorithm="NoSuch")
        assert error.value.status == 400


class TestPrivacyModels:
    def test_privacy_introspection_lists_every_registered_spec(self, client):
        models = {entry["name"]: entry for entry in client.privacy_models()}
        assert set(models) == set(privacy_registry.names())
        assert models["frequency-l"]["default"] is True
        assert models["t-closeness"]["enforceable"] is False
        for entry in models.values():
            assert entry["params"], entry["name"]
            for constraints in entry["params"].values():
                assert constraints["type"] in ("integer", "number")

    def test_submit_with_privacy_object(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        record, result = client.submit_and_wait(
            rows=rows, qi=qi, sa=sa, algorithm="TP",
            privacy={"kind": "entropy-l", "l": 2},
        )
        assert record["status"] == "done"
        assert record["privacy"] == {"kind": "entropy-l", "l": 2.0}
        assert result["privacy"] == {"kind": "entropy-l", "l": 2.0}
        assert result["verified"] is True
        # independent check of the returned table at rendered granularity
        histograms: dict[tuple, dict] = {}
        for row in result["rows"]:
            histogram = histograms.setdefault(tuple(row[:-1]), {})
            histogram[row[-1]] = histogram.get(row[-1], 0) + 1
        spec = EntropyLDiversity(2.0)
        assert all(spec.check(histogram) for histogram in histograms.values())

    def test_submit_with_spec_instance_and_csv_upload(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=qi + [sa])
        writer.writeheader()
        writer.writerows(rows)
        record, result = client.submit_and_wait(
            csv_text=buffer.getvalue(), qi=qi, sa=sa, algorithm="TP",
            privacy=KAnonymity(2),
        )
        assert record["status"] == "done"
        assert result["privacy"] == {"kind": "k-anonymity", "k": 2}
        # the sensitive column survives even though the spec is SA-blind
        assert sorted(row[-1] for row in result["rows"]) == sorted(
            row[sa] for row in rows
        )

    def test_default_submission_echoes_the_frequency_spec(self, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        record = client.wait(job_id)
        assert record["privacy"] == {"kind": "frequency-l", "l": 2}

    @pytest.mark.parametrize(
        "privacy, fragment",
        [
            ({"kind": "no-such-model", "l": 2}, "unknown privacy model"),
            ({"kind": "entropy-l"}, "requires parameters"),
            ({"kind": "entropy-l", "l": 0}, "must be positive"),
            ({"kind": "t-closeness", "t": 0.2}, "check-only"),
            ({"kind": "frequency-l", "l": 2, "zz": 1}, "does not take"),
        ],
    )
    def test_invalid_privacy_objects_are_rejected(
        self, client, hospital_rows, privacy, fragment
    ):
        rows, qi, sa = hospital_rows
        with pytest.raises(ClientError) as excinfo:
            client.submit(rows=rows, qi=qi, sa=sa, privacy=privacy)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)

    def test_submission_needs_l_or_privacy(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        with pytest.raises(ValueError):
            client.submit(rows=rows, qi=qi, sa=sa)
        # server-side check too (the SDK guard could be bypassed)
        request = urllib.request.Request(
            f"{client.base_url}/v1/jobs",
            data=json.dumps({"rows": [{"a": 1}], "qi": ["a"], "sa": "b"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        excinfo.value.read()
        assert excinfo.value.code == 400

    def test_plan_endpoint_accepts_a_privacy_object(self, client):
        decision = client.plan(
            n=50_000, l=2, algorithm="TP",
            privacy={"kind": "recursive-cl", "c": 2.0, "l": 3},
        )
        assert decision["privacy"] == "recursive-cl(c=2.0,l=3)"
        assert any("privacy" in reason for reason in decision["reasons"])

    def test_ledger_records_the_spec_for_cli_interop(self, server, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        ledger = JobLedger(server.server.workspace.jobs_path)
        assert ledger.get(job_id).privacy == {"kind": "frequency-l", "l": 2}
