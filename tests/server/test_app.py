"""Handler tests over a loopback server: lifecycle, validation, backpressure."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.client import Client, ClientError, JobFailedError
from repro.service import JobLedger, verify_csv_l_diverse

from server_harness import ServerHandle


def _submit_hospital(client: Client, hospital_rows, **fields) -> str:
    rows, qi, sa = hospital_rows
    fields.setdefault("l", 2)
    fields.setdefault("algorithm", "TP")
    return client.submit(rows=rows, qi=qi, sa=sa, **fields)


class TestLifecycle:
    def test_submit_wait_result_roundtrip(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        record, result = client.submit_and_wait(
            rows=rows, qi=qi, sa=sa, l=2, algorithm="TP", metrics=["kl"]
        )
        assert record["status"] == "done"
        assert record["n"] == len(rows)
        assert result["verified"] is True
        assert result["header"] == qi + [sa]
        assert len(result["rows"]) == len(rows)
        assert "kl" in result["metric_values"]
        # the sensitive column must survive as a multiset
        assert sorted(row[-1] for row in result["rows"]) == sorted(
            row[sa] for row in rows
        )

    def test_result_as_csv_is_l_diverse(self, client, hospital_rows, tmp_path):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        text = client.result_csv(job_id)
        path = tmp_path / "published.csv"
        path.write_text(text)
        _rows, qi, sa = hospital_rows
        assert verify_csv_l_diverse(path, qi, sa, 2)

    def test_repeated_submission_hits_the_store(self, client, hospital_rows):
        first = _submit_hospital(client, hospital_rows)
        client.wait(first)
        assert client.result(first)["store_hit"] is False
        second = _submit_hospital(client, hospital_rows)
        client.wait(second)
        assert second != first
        assert client.result(second)["store_hit"] is True

    def test_lifecycle_is_persisted_to_the_ledger(self, server, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        ledger = JobLedger(server.server.workspace.jobs_path)
        statuses = [record.status for record in ledger.history(job_id)]
        assert statuses == ["queued", "running", "done"]

    def test_synthetic_source_job(self, client):
        record, result = client.submit_and_wait(
            source={"kind": "synthetic", "dataset": "SAL", "n": 300, "dimension": 3},
            l=4,
        )
        assert record["label"] == "SAL-3@300"
        assert result["n"] == 300

    def test_csv_upload_job(self, client):
        text = "Age,Gender,Disease\n" + "\n".join(
            f"{20 + i % 4},{'MF'[i % 2]},D{i % 3}" for i in range(24)
        )
        record, result = client.submit_and_wait(
            csv_text=text, qi=["Age", "Gender"], sa="Disease", l=2
        )
        assert record["status"] == "done"
        assert result["n"] == 24

    def test_ineligible_table_fails_the_job(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        job_id = client.submit(rows=rows, qi=qi, sa=sa, l=len(rows) + 1)
        with pytest.raises(JobFailedError) as info:
            client.wait(job_id)
        assert info.value.record["status"] == "failed"
        assert "IneligibleTableError" in info.value.record["error"]
        # a failed job has no result
        with pytest.raises(ClientError) as error:
            client.result(job_id)
        assert error.value.status == 409

    def test_job_metrics_endpoint_excludes_rows(self, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows, metrics=["stars"])
        client.wait(job_id)
        payload = client.job_metrics(job_id)
        assert "rows" not in payload and "header" not in payload
        assert payload["metric_values"]["stars"] == payload["stars"]

    def test_jobs_listing_contains_submissions(self, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        assert job_id in [job["id"] for job in client.jobs()]


class TestValidation:
    def _raw_post(self, server, body: bytes, content_type="application/json", path="/v1/jobs"):
        request = urllib.request.Request(
            server.base_url + path,
            data=body,
            headers={"Content-Type": content_type},
            method="POST",
        )
        return urllib.request.urlopen(request, timeout=10)

    def test_bad_json_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, b"{not json")
        assert error.value.code == 400
        assert "JSON" in json.loads(error.value.read())["error"]

    def test_non_object_json_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, b"[1, 2]")
        assert error.value.code == 400

    def test_unknown_algorithm_is_400(self, client, hospital_rows):
        with pytest.raises(ClientError) as error:
            _submit_hospital(client, hospital_rows, algorithm="NoSuch")
        assert error.value.status == 400
        assert "unknown algorithm" in error.value.message

    def test_unknown_metric_is_400(self, client, hospital_rows):
        with pytest.raises(ClientError) as error:
            _submit_hospital(client, hospital_rows, metrics=["nope"])
        assert error.value.status == 400

    def test_l_below_two_is_400(self, client, hospital_rows):
        with pytest.raises(ClientError) as error:
            _submit_hospital(client, hospital_rows, l=1)
        assert error.value.status == 400

    def test_rows_and_source_together_is_400(self, server, hospital_rows):
        rows, qi, sa = hospital_rows
        body = json.dumps(
            {"rows": rows, "qi": qi, "sa": sa, "l": 2, "source": {"kind": "synthetic"}}
        ).encode()
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, body)
        assert error.value.code == 400
        assert "exactly one" in json.loads(error.value.read())["error"]

    def test_missing_qi_is_400(self, client, hospital_rows):
        rows, _qi, sa = hospital_rows
        with pytest.raises(ClientError) as error:
            client.submit(rows=rows, qi=[], sa=sa, l=2)
        assert error.value.status == 400

    def test_sa_overlapping_qi_is_400(self, client, hospital_rows):
        rows, qi, _sa = hospital_rows
        with pytest.raises(ClientError) as error:
            client.submit(rows=rows, qi=qi, sa=qi[0], l=2)
        assert error.value.status == 400

    def test_unknown_source_kind_is_400(self, client):
        with pytest.raises(ClientError) as error:
            client.submit(source={"kind": "sql"}, l=2)
        assert error.value.status == 400

    def test_non_integer_seed_is_400_not_500(self, server, hospital_rows):
        rows, qi, sa = hospital_rows
        for payload in (
            {"rows": rows, "qi": qi, "sa": sa, "l": 2, "seed": "abc"},
            {"source": {"kind": "synthetic", "seed": "abc"}, "l": 2},
            {"source": {"kind": "synthetic", "n": "many"}, "l": 2},
        ):
            with pytest.raises(urllib.error.HTTPError) as error:
                self._raw_post(server, json.dumps(payload).encode())
            assert error.value.code == 400, payload

    def test_csv_upload_missing_column_is_400(self, client):
        with pytest.raises(ClientError) as error:
            client.submit(csv_text="Age,Disease\n30,flu\n", qi=["Zip"], sa="Disease", l=2)
        assert error.value.status == 400
        assert "missing columns" in error.value.message

    def test_unsharded_algorithm_with_shards_is_400(self, server, monkeypatch):
        """Capability metadata is enforced at submit time, before queueing."""
        import repro.server.app as app_module
        from repro.engine.registry import AlgorithmInfo
        from repro.server import HttpError

        info = AlgorithmInfo(
            name="NoShard", runner=lambda table, l: None, supports_sharding=False
        )

        class StubRegistry:
            def get(self, name):
                return info

        monkeypatch.setattr(app_module, "algorithm_registry", StubRegistry())
        with pytest.raises(HttpError) as error:
            server.server._base_spec({"algorithm": "NoShard", "l": 2, "shards": 4})
        assert error.value.status == 400
        assert "does not support sharded execution" in error.value.message

    def test_oversized_payload_is_413(self, tmp_path):
        handle = ServerHandle(workspace=tmp_path / "ws-small", max_body_bytes=1024)
        try:
            with pytest.raises(urllib.error.HTTPError) as error:
                self._raw_post(handle, b"x" * 4096)
            assert error.value.code == 413
        finally:
            handle.stop()

    def test_unknown_path_is_404_and_wrong_method_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(server.base_url + "/v2/nope", timeout=10)
        assert error.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as error:
            self._raw_post(server, b"{}", path="/v1/algorithms")
        assert error.value.code == 405
        assert error.value.headers["Allow"] == "GET"

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ClientError) as error:
            client.status("job-9999")
        assert error.value.status == 404

    def test_result_of_running_job_is_409(self, server, client, hospital_rows):
        server.run(server.server.pool.pause)
        try:
            job_id = _submit_hospital(client, hospital_rows)
            with pytest.raises(ClientError) as error:
                client.result(job_id)
            assert error.value.status == 409
        finally:
            server.run(server.server.pool.resume)
            client.wait(job_id)


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-bp", workers=1, queue_cap=2, paused=True
        )
        client = Client(handle.base_url, client_id="bp", retries=0)
        try:
            accepted = [_submit_hospital(client, hospital_rows) for _ in range(2)]
            with pytest.raises(ClientError) as error:
                _submit_hospital(client, hospital_rows)
            assert error.value.status == 429
            assert "queue is full" in error.value.message
            handle.run(handle.server.pool.resume)
            for job_id in accepted:
                assert client.wait(job_id)["status"] == "done"
            health = client.health()
            assert health["jobs"]["rejected_queue_full"] == 1
        finally:
            handle.stop()

    def test_retry_after_header_is_set_on_queue_full(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-bp2", workers=1, queue_cap=1, paused=True
        )
        rows, qi, sa = hospital_rows
        try:
            Client(handle.base_url, retries=0).submit(rows=rows, qi=qi, sa=sa, l=2)
            body = json.dumps(
                {"rows": rows, "qi": qi, "sa": sa, "l": 2}
            ).encode()
            request = urllib.request.Request(
                handle.base_url + "/v1/jobs", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(request, timeout=10)
            assert error.value.code == 429
            assert int(error.value.headers["Retry-After"]) >= 1
        finally:
            handle.run(handle.server.pool.resume)
            handle.stop()

    def test_client_retries_through_backpressure(self, tmp_path, hospital_rows):
        """A retrying client eventually lands every submission despite a tiny queue."""
        handle = ServerHandle(workspace=tmp_path / "ws-bp3", workers=2, queue_cap=1)
        client = Client(
            handle.base_url, client_id="patient", retries=20, backoff_seconds=0.05
        )
        try:
            job_ids = [_submit_hospital(client, hospital_rows) for _ in range(6)]
            for job_id in job_ids:
                assert client.wait(job_id)["status"] == "done"
        finally:
            handle.stop()

    def test_per_client_rate_limit_is_429(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-rate", rate_limit=0.001, rate_burst=2
        )
        client = Client(handle.base_url, client_id="greedy", retries=0)
        other = Client(handle.base_url, client_id="other", retries=0)
        try:
            for _ in range(2):
                _submit_hospital(client, hospital_rows)
            with pytest.raises(ClientError) as error:
                _submit_hospital(client, hospital_rows)
            assert error.value.status == 429
            assert "rate limited" in error.value.message
            # buckets are per client: another identity still gets through
            _submit_hospital(other, hospital_rows)
            assert client.health()["jobs"]["rejected_rate_limited"] == 1
        finally:
            handle.stop()


class TestCancel:
    def test_cancel_queued_job(self, server, client, hospital_rows):
        server.run(server.server.pool.pause)
        job_id = _submit_hospital(client, hospital_rows)
        record = client.cancel(job_id)
        assert record["status"] == "cancelled"
        server.run(server.server.pool.resume)
        assert client.status(job_id)["status"] == "cancelled"
        with pytest.raises(ClientError) as error:
            client.result(job_id)
        assert error.value.status == 409
        ledger = JobLedger(server.server.workspace.jobs_path)
        assert [r.status for r in ledger.history(job_id)] == ["queued", "cancelled"]

    def test_cancel_done_job_is_409(self, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        with pytest.raises(ClientError) as error:
            client.cancel(job_id)
        assert error.value.status == 409

    def test_shutdown_cancels_queued_jobs(self, tmp_path, hospital_rows):
        handle = ServerHandle(
            workspace=tmp_path / "ws-drain", workers=1, queue_cap=4, paused=True
        )
        client = Client(handle.base_url, retries=0)
        job_ids = [_submit_hospital(client, hospital_rows) for _ in range(3)]
        handle.stop()
        ledger = JobLedger(handle.server.workspace.jobs_path)
        assert {ledger.get(job_id).status for job_id in job_ids} == {"cancelled"}


class TestResidency:
    def test_spooled_uploads_are_deleted_after_the_job(self, server, client, hospital_rows):
        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        tmp_dir = server.server.workspace.tmp_dir
        assert not list(tmp_dir.glob("upload-*.csv"))

    def test_cancelled_jobs_drop_their_spool(self, server, client, hospital_rows):
        server.run(server.server.pool.pause)
        try:
            job_id = _submit_hospital(client, hospital_rows)
            client.cancel(job_id)
            assert not list(server.server.workspace.tmp_dir.glob(f"upload-{job_id}.csv"))
        finally:
            server.run(server.server.pool.resume)

    def test_resident_results_are_bounded(self, tmp_path, hospital_rows):
        """Old terminal results are evicted; status falls back to the ledger."""
        handle = ServerHandle(
            workspace=tmp_path / "ws-resident", workers=1, queue_cap=4,
            max_resident_jobs=1,
        )
        client = Client(handle.base_url, retries=10, backoff_seconds=0.02)
        try:
            first = _submit_hospital(client, hospital_rows)
            client.wait(first)
            second = _submit_hospital(client, hospital_rows, algorithm="TP+")
            client.wait(second)
            # cap is clamped to queue_cap + workers + 1 = 6; fill past it
            more = [
                _submit_hospital(client, hospital_rows, l=2, seed=index)
                for index in range(6)
            ]
            for job_id in more:
                client.wait(job_id)
            assert len(handle.server._jobs) <= handle.server.max_resident_jobs
            # evicted jobs still answer status from the ledger...
            assert client.status(first)["status"] == "done"
            # ...but their result is no longer resident
            with pytest.raises(ClientError) as error:
                client.result(first)
            assert error.value.status == 404
        finally:
            handle.stop()


class TestIntrospection:
    def test_health_reports_version_and_counters(self, client, hospital_rows):
        from repro import __version__

        job_id = _submit_hospital(client, hospital_rows)
        client.wait(job_id)
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["jobs"]["submitted"] >= 1
        assert health["jobs"]["done"] >= 1

    def test_algorithm_registry_view(self, client):
        names = {entry["name"] for entry in client.algorithms()}
        assert {"TP", "TP+", "Hilbert"} <= names
        for entry in client.algorithms():
            assert set(entry) == {
                "name", "description", "complexity", "approximation",
                "supports_sharding", "deterministic",
            }

    def test_metric_registry_view(self, client):
        names = {entry["name"] for entry in client.metrics()}
        assert {"stars", "kl"} <= names

    def test_plan_endpoint_explains_decision(self, client):
        decision = client.plan(n=50_000, l=4, algorithm="TP+", d=3)
        assert decision["shards"] >= 1
        assert decision["workers"] >= 1
        assert decision["backend"] in ("numpy", "reference")
        assert decision["reasons"]
        assert decision["candidates"]

    def test_plan_unknown_algorithm_is_400(self, client):
        with pytest.raises(ClientError) as error:
            client.plan(n=100, l=2, algorithm="NoSuch")
        assert error.value.status == 400
