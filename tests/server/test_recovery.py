"""Failure-matrix tests: the server surviving the failures it promises to.

Each test breaks a live loopback server with an installed
:class:`~repro.server.faults.FaultPlan` (worker kills, injected delays,
one-shot ledger-append failures) or a staged ledger (restart replay) and
asserts the at-least-once contract: every submitted job reaches a terminal
state, retryable failures are retried with the counters to prove it, and
poison jobs are quarantined instead of crash-looping the pool.

Jobs run on a *thread* executor here (like the rest of the server suite);
worker death is injected as :class:`BrokenProcessPool` by the fault hook, so
the pool's recovery path sees the identical exception the production process
pool would raise.  ``scripts/chaos_smoke.py`` covers real process kills and
a real SIGKILL server restart end to end.
"""

from __future__ import annotations

import time

import pytest
from server_harness import ServerHandle

from repro.client import Client, JobFailedError
from repro.privacy.spec import resolve_privacy
from repro.server import faults
from repro.server.faults import FAULTS_ENV_VAR, FaultPlan, clear_plan, install_plan
from repro.service.jobs import JobLedger


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.setattr(faults, "_jobs_executed", 0)
    clear_plan()
    yield
    clear_plan()


def _handle(tmp_path, **kwargs) -> ServerHandle:
    kwargs.setdefault("workspace", tmp_path / "server-ws")
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_cap", 8)
    kwargs.setdefault("retry_backoff_seconds", 0.05)
    return ServerHandle(**kwargs)


def _synthetic_source(seed: int, n: int = 80) -> dict:
    return {"kind": "synthetic", "dataset": "SAL", "n": n, "seed": seed, "dimension": 2}


def _queued_spec(seed: int = 3, n: int = 80) -> dict:
    """A job spec exactly as the submit handler would persist it."""
    return {
        "algorithm": "TP",
        "l": 2,
        "privacy": resolve_privacy(None, 2).to_dict(),
        "metrics": [],
        "shards": None,
        "backend": None,
        "seed": seed,
        "chunk_rows": None,
        "include_rows": True,
        "source": _synthetic_source(seed, n),
    }


def _wait_status(client: Client, job_id: str, statuses, timeout: float = 10.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        record = client.status(job_id)
        if record["status"] in statuses:
            return record
        if time.monotonic() >= deadline:
            raise TimeoutError(f"job {job_id} stuck {record['status']}")
        time.sleep(0.02)


class TestWorkerDeathRecovery:
    def test_broken_pool_mid_job_is_retried_and_succeeds(self, tmp_path):
        """kill_every: one attempt dies with its worker, the retry lands."""
        handle = _handle(tmp_path)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            # The 2nd execution in this process dies; with one drainer the
            # schedule is deterministic: job-a runs clean, job-b's first
            # attempt dies, its retry (execution #3) runs clean.
            install_plan(FaultPlan(kill_every=2))
            job_a = client.submit(l=2, source=_synthetic_source(1))
            job_b = client.submit(l=2, source=_synthetic_source(2))
            record_a = client.wait(job_a, timeout=15)
            record_b = client.wait(job_b, timeout=15)
            assert record_a["status"] == record_b["status"] == "done"
            clear_plan()  # health must not trip kill_every bookkeeping
            health = client.health()
            assert health["pool"]["retries"] >= 1
            assert health["pool"]["pool_restarts"] >= 1
            assert health["pool"]["quarantined"] == 0
            # the crashed attempt is visible on the record
            crashed = client.status(job_b)
            assert crashed["attempts"] == 2
            assert "WorkerCrashError" in crashed["last_error"]
        finally:
            handle.stop()

    def test_poison_job_is_quarantined_after_max_attempts(self, tmp_path):
        handle = _handle(tmp_path, max_attempts=2)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            install_plan(FaultPlan(kill_seeds=(666,)))
            healthy = client.submit(l=2, source=_synthetic_source(1))
            poison = client.submit(l=2, source=_synthetic_source(666), seed=666)
            assert client.wait(healthy, timeout=15)["status"] == "done"
            with pytest.raises(JobFailedError) as failure:
                client.wait(poison, timeout=15)
            record = failure.value.record
            assert record["status"] == "failed"
            assert record["quarantined"] is True
            assert record["attempts"] == 2
            assert "quarantined after 2 attempts" in record["error"]
            clear_plan()
            assert client.health()["pool"]["quarantined"] == 1
            # quarantine is terminal in the ledger too, not just in memory
            ledger = JobLedger(handle.server.workspace.jobs_path)
            assert ledger.get(record["id"]).status == "failed"
            assert ledger.get(record["id"]).quarantined is True
        finally:
            handle.stop()


class TestJobTimeout:
    def test_timeout_then_succeed(self, tmp_path):
        """delay_once wedges the first attempt past --job-timeout; the retry
        runs clean and the job still completes."""
        handle = _handle(tmp_path, job_timeout_seconds=0.2)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            install_plan(FaultPlan(delay_seconds=1.5, delay_seeds=(777,)))
            job_id = client.submit(l=2, source=_synthetic_source(777), seed=777)
            record = client.wait(job_id, timeout=20)
            assert record["status"] == "done"
            assert record["attempts"] == 2
            assert "JobTimeoutError" in record["last_error"]
            clear_plan()
            health = client.health()
            assert health["pool"]["timeouts"] >= 1
            assert health["pool"]["retries"] >= 1
            assert health["pool"]["job_timeout_seconds"] == 0.2
        finally:
            handle.stop()


class TestRestartReplay:
    def test_non_terminal_ledger_jobs_are_replayed_at_boot(self, tmp_path):
        """A queued job and an interrupted running job from a killed server
        both complete after a fresh boot on the same workspace."""
        workspace = tmp_path / "server-ws"
        ledger = JobLedger(workspace / "jobs.jsonl")
        queued = ledger.create(
            label="SAL-2@80", algorithm="TP", l=2,
            privacy=resolve_privacy(None, 2).to_dict(),
            spec=_queued_spec(seed=11), max_attempts=3,
        )
        interrupted = ledger.create(
            label="SAL-2@80", algorithm="TP", l=2,
            privacy=resolve_privacy(None, 2).to_dict(),
            spec=_queued_spec(seed=12), max_attempts=3,
        )
        ledger.transition(interrupted.id, "running", attempts=1)

        handle = _handle(tmp_path)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            for job_id in (queued.id, interrupted.id):
                assert _wait_status(client, job_id, ("done",))["status"] == "done"
            assert handle.server.stats["replayed"] == 2
            # the interrupted attempt is on the record: it went through
            # 'retrying' and its replacement attempt counted
            record = client.status(interrupted.id)
            assert record["attempts"] >= 2
            history = [r.status for r in ledger.history(interrupted.id)]
            assert "retrying" in history
        finally:
            handle.stop()

    def test_replay_fails_an_upload_whose_spool_is_gone(self, tmp_path):
        """An uploaded-CSV job whose spool file did not survive the crash
        cannot be re-run; it must fail terminally, not sit queued forever."""
        workspace = tmp_path / "server-ws"
        ledger = JobLedger(workspace / "jobs.jsonl")
        spec = _queued_spec(seed=5)
        spec["source"] = {"kind": "csv", "path": "", "qi": ["Age"], "sa": "Disease"}
        lost = ledger.create(
            label="upload(1B)", algorithm="TP", l=2,
            privacy=resolve_privacy(None, 2).to_dict(),
            spec=spec, max_attempts=3,
        )
        handle = _handle(tmp_path)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            record = _wait_status(client, lost.id, ("failed",))
            assert "spool lost" in record["error"]
            assert handle.server.stats["replayed"] == 0
        finally:
            handle.stop()

    def test_replay_can_be_disabled(self, tmp_path):
        workspace = tmp_path / "server-ws"
        ledger = JobLedger(workspace / "jobs.jsonl")
        parked = ledger.create(
            label="SAL-2@80", algorithm="TP", l=2,
            privacy=resolve_privacy(None, 2).to_dict(),
            spec=_queued_spec(seed=7), max_attempts=3,
        )
        handle = _handle(tmp_path, replay=False)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            time.sleep(0.2)
            assert client.status(parked.id)["status"] == "queued"
            assert handle.server.stats["replayed"] == 0
        finally:
            handle.stop()

    def test_boot_compacts_the_ledger(self, tmp_path):
        """Superseded transition lines are reclaimed at boot and counted."""
        workspace = tmp_path / "server-ws"
        ledger = JobLedger(workspace / "jobs.jsonl")
        done = ledger.create(
            label="x", algorithm="TP", l=2,
            privacy=resolve_privacy(None, 2).to_dict(),
        )
        ledger.transition(done.id, "running")
        ledger.transition(done.id, "done")
        handle = _handle(tmp_path)
        try:
            assert handle.server.stats["compaction_reclaimed"] == 2
            lines = (workspace / "jobs.jsonl").read_text().strip().splitlines()
            assert len(lines) == 1
        finally:
            handle.stop()


class TestLedgerAppendFailure:
    def test_job_reaches_terminal_state_despite_lost_retry_append(self, tmp_path):
        """The one-shot ledger failure lands on the 'retrying' append of a
        poison job; the job must still end quarantined (memory and ledger)."""
        handle = _handle(tmp_path, max_attempts=2)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            # Pause so the plan is installed after the submission's own
            # ledger 'create' append — the one-shot must hit the retry
            # transition, the hardest append to lose.
            handle.run(handle.server.pool.pause)
            job_id = client.submit(l=2, source=_synthetic_source(666), seed=666)
            install_plan(
                FaultPlan(kill_seeds=(666,), fail_ledger_append_once=True)
            )
            handle.run(handle.server.pool.resume)
            with pytest.raises(JobFailedError) as failure:
                client.wait(job_id, timeout=20)
            assert failure.value.record["quarantined"] is True
            clear_plan()
            ledger = JobLedger(handle.server.workspace.jobs_path)
            final = ledger.get(job_id)
            assert final.status == "failed"
            assert final.quarantined is True
        finally:
            handle.stop()


class TestRetryingCancel:
    def test_a_job_waiting_out_its_backoff_can_be_cancelled(self, tmp_path):
        handle = _handle(tmp_path, max_attempts=5, retry_backoff_seconds=5.0)
        try:
            client = Client(handle.base_url, retries=3, backoff_seconds=0.01)
            install_plan(FaultPlan(kill_seeds=(666,)))
            job_id = client.submit(l=2, source=_synthetic_source(666), seed=666)
            _wait_status(client, job_id, ("retrying",))
            record = client.cancel(job_id)
            assert record["status"] == "cancelled"
            assert client.status(job_id)["status"] == "cancelled"
        finally:
            handle.stop()
