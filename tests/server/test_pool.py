"""Unit tests for the worker pool, job executor and rate limiter."""

from __future__ import annotations

import asyncio

import pytest

from repro.server.pool import QueueFullError, WorkerPool, build_source, execute_job
from repro.server.ratelimit import RateLimiter
from repro.service import verify_csv_l_diverse


class TestRateLimiter:
    def test_disabled_limiter_always_allows(self):
        limiter = RateLimiter(None)
        assert all(limiter.check("anyone") == 0.0 for _ in range(1000))

    def test_burst_then_reject_then_refill(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=2, clock=lambda: now[0])
        assert limiter.check("c") == 0.0
        assert limiter.check("c") == 0.0
        wait = limiter.check("c")
        assert wait == pytest.approx(1.0, abs=0.01)
        now[0] += wait
        assert limiter.check("c") == 0.0
        assert limiter.rejections == 1

    def test_buckets_are_per_client(self):
        limiter = RateLimiter(rate=0.001, burst=1, clock=lambda: 0.0)
        assert limiter.check("a") == 0.0
        assert limiter.check("a") > 0
        assert limiter.check("b") == 0.0

    def test_bucket_count_is_bounded(self):
        limiter = RateLimiter(rate=1.0, clock=lambda: 0.0)
        for index in range(5000):
            limiter.check(f"client-{index}")
        assert len(limiter._buckets) <= 1024

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0.5)


class TestExecuteJob:
    def _spec(self, **overrides) -> dict:
        spec = {
            "algorithm": "TP",
            "l": 4,
            "metrics": ["stars"],
            "shards": None,
            "backend": None,
            "seed": 0,
            "chunk_rows": None,
            "include_rows": True,
            "source": {"kind": "synthetic", "dataset": "SAL", "n": 200, "seed": 3,
                       "dimension": 3},
        }
        spec.update(overrides)
        return spec

    def test_synthetic_round_trip_without_store(self, tmp_path):
        result = execute_job(self._spec(), str(tmp_path / "ws"), False)
        assert result["n"] == 200
        assert result["verified"] is True
        assert result["metric_values"]["stars"] == result["stars"]
        assert len(result["rows"]) == 200
        assert not result["store_hit"]

    def test_store_hit_across_executions(self, tmp_path):
        first = execute_job(self._spec(), str(tmp_path / "ws"), True)
        second = execute_job(self._spec(), str(tmp_path / "ws"), True)
        assert not first["store_hit"]
        assert second["store_hit"] and second["cache_hit"]
        assert second["rows"] == first["rows"]

    def test_include_rows_false_omits_the_table(self, tmp_path):
        result = execute_job(self._spec(include_rows=False), str(tmp_path / "ws"), False)
        assert "rows" not in result and "header" not in result

    def test_rows_are_l_diverse_as_csv(self, tmp_path):
        result = execute_job(self._spec(), str(tmp_path / "ws"), False)
        path = tmp_path / "out.csv"
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(result["header"])
            writer.writerows(result["rows"])
        assert verify_csv_l_diverse(path, result["header"][:-1], result["header"][-1], 4)

    def test_build_source_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            build_source({"kind": "sql"})


class TestWorkerPool:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_queue_full_raises_with_retry_after(self):
        async def scenario():
            pool = WorkerPool(workers=1, queue_cap=2, executor_kind="thread")
            pool.pause()
            await pool.start()
            pool.submit("job-1", {})
            pool.submit("job-2", {})
            with pytest.raises(QueueFullError) as error:
                pool.submit("job-3", {})
            assert error.value.capacity == 2
            assert error.value.retry_after >= 1.0
            await pool.shutdown()

        self._run(scenario())

    def test_cancel_only_while_queued(self):
        async def scenario():
            pool = WorkerPool(workers=1, queue_cap=4, executor_kind="thread")
            pool.pause()
            await pool.start()
            pool.submit("job-1", {})
            assert pool.cancel("job-1") is True
            assert pool.cancel("job-1") is False  # already cancelled
            assert pool.cancel("job-9") is False  # unknown
            await pool.shutdown()

        self._run(scenario())

    def test_transitions_flow_through_callback(self, tmp_path):
        events: list[tuple[str, str]] = []

        def transition(job_id, status, result=None, error="", **kw):
            events.append((job_id, status))

        async def scenario():
            pool = WorkerPool(
                workers=1,
                queue_cap=4,
                transition=transition,
                executor_kind="thread",
                workspace_root=str(tmp_path / "ws"),
                use_store=False,
            )
            await pool.start()
            spec = {
                "algorithm": "TP",
                "l": 2,
                "source": {"kind": "synthetic", "n": 60, "dimension": 2},
            }
            pool.submit("job-1", spec)
            pool.submit("job-2", {"algorithm": "TP", "l": 2, "source": {"kind": "sql"}})
            await pool._queue.join()
            await pool.shutdown()

        self._run(scenario())
        assert ("job-1", "running") in events
        assert ("job-1", "done") in events
        assert ("job-2", "failed") in events

    def test_shutdown_reports_abandoned_jobs(self):
        async def scenario():
            pool = WorkerPool(workers=1, queue_cap=4, executor_kind="thread")
            pool.pause()
            await pool.start()
            pool.submit("job-1", {})
            pool.submit("job-2", {})
            pool.cancel("job-2")
            return await pool.shutdown(grace_seconds=0.2)

        assert self._run(scenario()) == (["job-1", "job-2"], [])

    def test_shutdown_waits_for_running_jobs_to_record(self, tmp_path):
        """An in-flight job inside the grace window still lands its 'done'."""
        events: list[tuple[str, str]] = []

        async def scenario():
            pool = WorkerPool(
                workers=1,
                queue_cap=4,
                transition=lambda job_id, status, **kw: events.append((job_id, status)),
                executor_kind="thread",
                workspace_root=str(tmp_path / "ws"),
                use_store=False,
            )
            await pool.start()
            pool.submit(
                "job-1",
                {"algorithm": "TP", "l": 2,
                 "source": {"kind": "synthetic", "n": 5000, "dimension": 2}},
            )
            while ("job-1", "running") not in events:  # drainer picked it up
                await asyncio.sleep(0.005)
            return await pool.shutdown(grace_seconds=30.0)

        abandoned, interrupted = self._run(scenario())
        assert (abandoned, interrupted) == ([], [])
        assert ("job-1", "done") in events

    def test_shutdown_reports_jobs_that_outlive_the_grace_window(self, tmp_path):
        """A run still in flight when the grace window closes is 'interrupted'.

        Regression: cancelling the drainers unwinds their ``finally:
        self._running.discard(...)`` blocks, so a snapshot taken *after* the
        cancellation always read an empty set and such jobs were reported in
        neither list — leaving them 'running' in the ledger forever.
        """
        events: list[tuple[str, str]] = []

        async def scenario():
            pool = WorkerPool(
                workers=1,
                queue_cap=4,
                transition=lambda job_id, status, **kw: events.append((job_id, status)),
                executor_kind="thread",
                workspace_root=str(tmp_path / "ws"),
                use_store=False,
            )
            await pool.start()
            pool.submit(
                "job-slow",
                {"algorithm": "TP", "l": 2,
                 "source": {"kind": "synthetic", "n": 30_000, "dimension": 3}},
            )
            while ("job-slow", "running") not in events:
                await asyncio.sleep(0.005)
            return await pool.shutdown(grace_seconds=0.01)

        abandoned, interrupted = self._run(scenario())
        assert abandoned == []
        assert interrupted == ["job-slow"]
        # its drainer was cancelled, so no terminal transition was recorded
        assert ("job-slow", "done") not in events

    def test_async_transition_callbacks_are_awaited(self, tmp_path):
        events: list[tuple[str, str]] = []

        async def transition(job_id, status, result=None, error="", **kw):
            await asyncio.sleep(0)
            events.append((job_id, status))

        async def scenario():
            pool = WorkerPool(
                workers=1,
                queue_cap=4,
                transition=transition,
                executor_kind="thread",
                workspace_root=str(tmp_path / "ws"),
                use_store=False,
            )
            await pool.start()
            pool.submit(
                "job-1",
                {"algorithm": "TP", "l": 2,
                 "source": {"kind": "synthetic", "n": 60, "dimension": 2}},
            )
            await pool._queue.join()
            await pool.shutdown()

        self._run(scenario())
        assert events == [("job-1", "running"), ("job-1", "done")]

    def test_drainer_survives_a_raising_transition_callback(self, tmp_path):
        """A callback blowing up (e.g. disk-full ledger append) must not kill
        the drainer — with workers=1 the server would accept jobs forever and
        run none of them."""
        events: list[tuple[str, str]] = []

        def transition(job_id, status, result=None, error="", **kw):
            if job_id == "job-bad":
                raise OSError("no space left on device")
            events.append((job_id, status))

        async def scenario():
            pool = WorkerPool(
                workers=1,
                queue_cap=4,
                transition=transition,
                executor_kind="thread",
                workspace_root=str(tmp_path / "ws"),
                use_store=False,
            )
            await pool.start()
            spec = {"algorithm": "TP", "l": 2,
                    "source": {"kind": "synthetic", "n": 60, "dimension": 2}}
            pool.submit("job-bad", spec)
            pool.submit("job-good", spec)
            await pool._queue.join()
            errors = pool.callback_errors
            await pool.shutdown()
            return errors

        assert self._run(scenario()) == 2  # running + done both raised
        assert ("job-good", "done") in events

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(queue_cap=0)
        with pytest.raises(ValueError):
            WorkerPool(executor_kind="fiber")
