"""Telemetry over the loopback server: exposition, exact counters, tracing.

The Prometheus parser used here is written *in the test* (independent of
:func:`repro.obs.metrics.parse_prometheus_text`), so a format regression in
the exposition cannot be masked by a matching regression in the library's
own parser.
"""

from __future__ import annotations

import concurrent.futures
import re
import urllib.request

import pytest

from repro.client import BackpressureError, Client

# --------------------------------------------------------- minimal parser


def parse_exposition(text: str) -> dict:
    """A deliberately independent Prometheus text parser.

    Returns ``{(name, frozenset(label pairs)): float}`` and asserts the
    structural invariants of the format (``# TYPE`` precedes samples, every
    non-comment line parses).
    """
    samples: dict = {}
    typed: set[str] = set()
    # Greedy label block: label *values* may contain '}' (route templates).
    line_re = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{.*\})?\s+(\S+)$")
    label_re = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            typed.add(line.split()[2])
            continue
        if line.startswith("#"):
            continue
        match = line_re.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        name, raw_labels, raw_value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, f"sample {name} precedes its # TYPE"
        labels = frozenset(label_re.findall(raw_labels or ""))
        value = float(raw_value.replace("+Inf", "inf"))
        samples[(name, labels)] = value
    return samples


def sample(samples: dict, name: str, **labels) -> float:
    return samples.get((name, frozenset(labels.items())), 0.0)


# -------------------------------------------------------------- behaviour


class TestTelemetryEndpoint:
    def test_scrape_is_valid_prometheus_text(self, server, client, hospital_rows):
        rows, qi, sa = hospital_rows
        job_id = client.submit(rows=rows, qi=qi, sa=sa, l=2)
        client.wait(job_id)
        raw = urllib.request.urlopen(f"{server.base_url}/v1/telemetry", timeout=10)
        assert raw.headers["Content-Type"].startswith("text/plain")
        samples = parse_exposition(raw.read().decode("utf-8"))
        assert sample(samples, "repro_jobs_submitted_total") == 1.0
        assert sample(samples, "repro_jobs_terminal_total", state="done") == 1.0
        assert sample(samples, "repro_queue_capacity") == 8.0
        assert (
            sample(
                samples,
                "repro_http_requests_total",
                route="/v1/jobs",
                method="POST",
                status="202",
            )
            == 1.0
        )
        # The engine stage histograms were bridged back from the worker.
        assert sample(samples, "repro_engine_stage_seconds_count", stage="phase1") >= 1.0

    def test_telemetry_agrees_with_health(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        for _ in range(2):
            client.wait(client.submit(rows=rows, qi=qi, sa=sa, l=2))
        samples = parse_exposition(client.telemetry_text())
        health = client.health()
        assert health["jobs"]["submitted"] == sample(
            samples, "repro_jobs_submitted_total"
        )
        assert health["jobs"]["done"] == sample(
            samples, "repro_jobs_terminal_total", state="done"
        )
        assert health["callback_errors"] == sample(
            samples, "repro_pool_callback_errors_total"
        )
        assert health["pool"]["retries"] == sample(samples, "repro_pool_retries_total")
        assert health["pool"]["quarantined"] == sample(
            samples, "repro_pool_quarantined_total"
        )

    def test_concurrent_requests_lose_no_increments(self, server):
        """The hammer: exact request counts under thread-parallel load."""
        threads, per_thread = 8, 25
        url = f"{server.base_url}/v1/health"

        def work(_: int) -> int:
            done = 0
            for _ in range(per_thread):
                with urllib.request.urlopen(url, timeout=10) as response:
                    assert response.status == 200
                    done += 1
            return done

        with concurrent.futures.ThreadPoolExecutor(max_workers=threads) as pool:
            total = sum(pool.map(work, range(threads)))
        assert total == threads * per_thread
        samples = parse_exposition(
            urllib.request.urlopen(
                f"{server.base_url}/v1/telemetry", timeout=10
            ).read().decode("utf-8")
        )
        assert (
            sample(
                samples,
                "repro_http_requests_total",
                route="/v1/health",
                method="GET",
                status="200",
            )
            == threads * per_thread
        )
        assert (
            sample(samples, "repro_http_request_seconds_count", route="/v1/health")
            == threads * per_thread
        )


class TestRequestTracing:
    def test_request_id_echoed_and_minted(self, server):
        request = urllib.request.Request(
            f"{server.base_url}/v1/health", headers={"X-Request-Id": "fixed-id-1"}
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"] == "fixed-id-1"
        with urllib.request.urlopen(
            f"{server.base_url}/v1/health", timeout=10
        ) as response:
            minted = response.headers["X-Request-Id"]
            assert minted and len(minted) == 32

    def test_trace_carries_client_request_id_end_to_end(
        self, client, hospital_rows
    ):
        rows, qi, sa = hospital_rows
        job_id = client.submit(rows=rows, qi=qi, sa=sa, l=2)
        minted = client.last_request_id
        client.wait(job_id)

        # The id is stamped on the ledger record...
        assert client.status(job_id)["request_id"] == minted
        # ...and keys the span tree.
        trace = client.trace(job_id)
        assert trace["id"] == job_id
        assert trace["request_id"] == minted

        spans = {span["name"]: span for span in trace["spans"]}
        for name in ("submit", "queue-wait", "attempt-1", "publish"):
            assert name in spans, f"missing lifecycle span {name}"
        assert spans["attempt-1"]["attributes"]["outcome"] == "done"
        engine_spans = [
            span for span in trace["spans"] if span["name"].startswith("engine:")
        ]
        assert engine_spans, "engine stage spans were not bridged from the worker"
        assert all(span["parent"] == "attempt-1" for span in engine_spans)
        assert "engine:phase1" in spans

    def test_trace_of_unknown_job_is_404(self, client):
        from repro.client import ClientError

        with pytest.raises(ClientError) as info:
            client.trace("no-such-job")
        assert info.value.status == 404

    def test_result_payload_carries_request_id(self, client, hospital_rows):
        rows, qi, sa = hospital_rows
        job_id = client.submit(rows=rows, qi=qi, sa=sa, l=2)
        minted = client.last_request_id
        client.wait(job_id)
        assert client.result(job_id)["request_id"] == minted


class TestClientGiveUp:
    """Satellite regression: give-ups chain their cause and carry the id."""

    def test_backpressure_giveup_chains_cause_and_logs(
        self, tmp_path, hospital_rows, caplog
    ):
        from server_harness import ServerHandle

        rows, qi, sa = hospital_rows
        handle = ServerHandle(
            workspace=tmp_path / "bp-ws", paused=True, workers=1, queue_cap=1
        )
        try:
            client = Client(
                handle.base_url, retries=2, backoff_seconds=0.01, jitter_seed=7
            )
            client.submit(rows=rows, qi=qi, sa=sa, l=2)  # fills the queue
            with caplog.at_level("WARNING", logger="repro.client"):
                with pytest.raises(BackpressureError) as info:
                    client.submit(rows=rows, qi=qi, sa=sa, l=2)
            error = info.value
            assert error.status == 429
            # The final 429 response rides along as the cause...
            assert error.__cause__ is not None
            assert getattr(error.__cause__, "code", None) == 429
            # ...and the message names the request id of the episode.
            assert client.last_request_id in str(error)
            # The give-up was logged with that id.
            giveups = [
                record
                for record in caplog.records
                if "giving up" in record.getMessage()
            ]
            assert giveups
            assert giveups[-1].request_id == client.last_request_id
        finally:
            handle.stop()

    def test_connection_giveup_chains_cause(self):
        client = Client(
            "http://127.0.0.1:1", retries=1, backoff_seconds=0.01, jitter_seed=7
        )
        from repro.client import ClientError

        with pytest.raises(ClientError) as info:
            client.health()
        assert info.value.status == 0
        assert info.value.__cause__ is not None
        assert client.last_request_id in str(info.value)


class TestPoolCounterConsolidation:
    """Satellite regression: pool counters live on the locked obs registry."""

    def test_callback_error_attribute_reads_the_registry(self, tmp_path):
        import asyncio

        from repro.server.pool import WorkerPool

        def transition(job_id, status, **kwargs):
            raise OSError("sink is broken")

        async def scenario():
            pool = WorkerPool(
                workers=2,
                queue_cap=8,
                transition=transition,
                executor_kind="thread",
                workspace_root=str(tmp_path / "ws"),
                use_store=False,
            )
            await pool.start()
            spec = {
                "algorithm": "TP",
                "l": 2,
                "source": {"kind": "synthetic", "n": 60, "dimension": 2},
            }
            for index in range(4):
                pool.submit(f"job-{index}", spec)
            await pool._queue.join()
            counts = (
                pool.callback_errors,
                pool.metrics.get("repro_pool_callback_errors_total").total(),
            )
            await pool.shutdown()
            return counts

        attribute_view, registry_view = asyncio.run(scenario())
        # Every job fires exactly two callbacks (running + done), both raise.
        assert attribute_view == 8
        assert registry_view == 8.0
        # The attribute is a read-only view onto the registry counter.
        assert attribute_view == registry_view

    def test_legacy_counter_attributes_are_read_only_views(self, server):
        pool = server.server.pool
        for name in (
            "callback_errors",
            "retries",
            "pool_restarts",
            "timeouts",
            "quarantined",
        ):
            assert isinstance(getattr(pool, name), int)
            with pytest.raises(AttributeError):
                setattr(pool, name, 123)
