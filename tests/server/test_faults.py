"""Unit tests for the fault-injection module itself.

The recovery tests (``test_recovery.py``) use these hooks to break a live
server; here the hooks' own contract is pinned down — gating, env encoding,
one-shot semantics, and the deterministic kill/delay schedules.
"""

from __future__ import annotations

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.server import faults
from repro.server.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    active_plan,
    apply_worker_faults,
    clear_plan,
    install_plan,
    maybe_fail_ledger_append,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Every test starts with no plan and a zeroed per-process job counter."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    monkeypatch.setattr(faults, "_jobs_executed", 0)
    clear_plan()
    yield
    clear_plan()


class TestGating:
    def test_no_plan_means_every_hook_is_a_noop(self):
        assert active_plan() is None
        apply_worker_faults({"seed": 0})  # must not raise
        maybe_fail_ledger_append()

    def test_installed_plan_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, FaultPlan(kill_every=7).to_env())
        install_plan(FaultPlan(kill_every=3))
        assert active_plan().kill_every == 3
        clear_plan()
        assert active_plan().kill_every == 7

    def test_env_round_trip(self, monkeypatch):
        plan = FaultPlan(
            kill_every=5,
            kill_seeds=(666,),
            delay_seconds=1.5,
            delay_seeds=(777,),
            fail_ledger_append_once=True,
            seed=42,
        )
        monkeypatch.setenv(FAULTS_ENV_VAR, plan.to_env())
        assert active_plan() == plan

    def test_malformed_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "{not json")
        assert active_plan() is None


class TestOneShots:
    def test_consume_once_in_process(self):
        plan = FaultPlan()
        assert plan.consume_once("t") is True
        assert plan.consume_once("t") is False
        assert plan.consume_once("other") is True

    def test_consume_once_across_plan_copies_with_scratch_dir(self, tmp_path):
        """Two deserialized copies of one plan (two processes in real life)
        must agree on who claimed a token."""
        first = FaultPlan(scratch_dir=str(tmp_path))
        second = FaultPlan.from_dict(first.to_dict())
        assert first.consume_once("t") is True
        assert second.consume_once("t") is False

    def test_ledger_append_fails_exactly_once(self):
        install_plan(FaultPlan(fail_ledger_append_once=True))
        with pytest.raises(OSError):
            maybe_fail_ledger_append()
        maybe_fail_ledger_append()  # consumed: no longer raises


class TestWorkerFaults:
    def test_kill_every_nth_job(self):
        install_plan(FaultPlan(kill_every=3))
        apply_worker_faults({"seed": 1})
        apply_worker_faults({"seed": 2})
        with pytest.raises(BrokenProcessPool):
            apply_worker_faults({"seed": 3})

    def test_poison_seed_kills_every_attempt(self):
        install_plan(FaultPlan(kill_seeds=(666,)))
        apply_worker_faults({"seed": 1})
        for _ in range(3):
            with pytest.raises(BrokenProcessPool):
                apply_worker_faults({"seed": 666})

    def test_delay_once_applies_to_the_first_attempt_only(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        install_plan(FaultPlan(delay_seconds=2.0, delay_seeds=(777,)))
        apply_worker_faults({"seed": 1})  # not a delayed seed
        apply_worker_faults({"seed": 777})
        apply_worker_faults({"seed": 777})  # delay_once consumed
        assert slept == [2.0]

    def test_delay_every_attempt_when_delay_once_is_off(self, monkeypatch):
        slept: list[float] = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        install_plan(FaultPlan(delay_seconds=0.5, delay_once=False))
        apply_worker_faults({"seed": 1})
        apply_worker_faults({"seed": 2})
        assert slept == [0.5, 0.5]
