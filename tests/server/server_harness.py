"""Test harness: run an :class:`AnonymizationServer` on a background loop thread."""

from __future__ import annotations

import asyncio
import threading

from repro.server import AnonymizationServer


class ServerHandle:
    """An :class:`AnonymizationServer` running on a dedicated loop thread."""

    def __init__(self, paused: bool = False, **kwargs) -> None:
        kwargs.setdefault("executor_kind", "thread")
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.server = AnonymizationServer(**kwargs)
        if paused:
            # Freeze the pool before its drainers start: nothing is popped,
            # so queue depth (and thus 429 behaviour) is fully deterministic.
            self.server.pool.pause()
        self.host, self.port = self.call(self.server.start("127.0.0.1", 0))

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def call(self, coroutine, timeout: float = 30.0):
        """Run a coroutine on the server's loop and return its result."""
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result(timeout)

    def run(self, function, *args):
        """Run a plain callable on the loop thread (pool pause/resume etc.)."""
        done = threading.Event()
        box: list = []

        def runner() -> None:
            try:
                box.append(function(*args))
            finally:
                done.set()

        self.loop.call_soon_threadsafe(runner)
        if not done.wait(10):  # pragma: no cover - deadlock guard
            raise TimeoutError("loop callable did not finish")
        return box[0] if box else None

    def stop(self) -> None:
        self.call(self.server.shutdown())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
