"""Client SDK tests: retry-with-backoff behaviour against a scripted server.

The fake server answers from a canned list of (status, headers, body)
responses, so the retry loop's interaction with ``Retry-After`` is exercised
deterministically — no real pool, no timing races.  The sleep function is
captured instead of slept.
"""

from __future__ import annotations

import http.server
import json
import threading

import pytest

from repro.client import BackpressureError, Client, ClientError


class ScriptedServer:
    """Serves a fixed sequence of responses, then 200s forever."""

    def __init__(self, script: list[tuple[int, dict[str, str], dict]]) -> None:
        self.script = list(script)
        self.requests: list[str] = []
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def _serve(self) -> None:
                outer.requests.append(self.path)
                status, headers, payload = (
                    outer.script.pop(0) if outer.script else (200, {}, {"ok": True})
                )
                body = json.dumps(payload).encode()
                self.send_response(status)
                for name, value in headers.items():
                    self.send_header(name, value)
                self.send_header("Content-Length", str(len(body)))
                self.send_header("Content-Type", "application/json")
                self.end_headers()
                self.wfile.write(body)

            do_GET = do_POST = _serve

            def log_message(self, *args) -> None:  # noqa: ARG002 - quiet
                pass

        self.httpd = http.server.HTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(target=self.httpd.serve_forever, daemon=True)
        self.thread.start()

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.httpd.server_port}"

    def stop(self) -> None:
        self.httpd.shutdown()
        self.thread.join(5)


@pytest.fixture
def sleeps():
    return []


def _client(server: ScriptedServer, sleeps: list, **kwargs) -> Client:
    kwargs.setdefault("retries", 4)
    kwargs.setdefault("backoff_seconds", 0.125)
    return Client(server.base_url, sleep=sleeps.append, **kwargs)


class TestRetry:
    def test_retry_honours_retry_after_header(self, sleeps):
        server = ScriptedServer(
            [
                (429, {"Retry-After": "2"}, {"error": "queue full"}),
                (429, {"Retry-After": "3"}, {"error": "queue full"}),
                (200, {}, {"id": "job-0001"}),
            ]
        )
        try:
            client = _client(server, sleeps)
            payload = client._json("POST", "/v1/jobs", {"l": 2})
            assert payload == {"id": "job-0001"}
            # the ask is a floor; full jitter spreads clients out above it
            # (first wait jitters over 0.125, second over the doubled 0.25)
            assert len(sleeps) == 2
            assert 2.0 <= sleeps[0] <= 2.0 + 0.125
            assert 3.0 <= sleeps[1] <= 3.0 + 0.25
            assert client.backpressure_events == 2
        finally:
            server.stop()

    def test_retry_falls_back_to_exponential_backoff(self, sleeps):
        server = ScriptedServer(
            [
                (503, {}, {"error": "draining"}),
                (503, {}, {"error": "draining"}),
                (200, {}, {"ok": True}),
            ]
        )
        try:
            _client(server, sleeps)._json("GET", "/v1/health")
            # no Retry-After -> full jitter over the client's own doubling
            # schedule: uniform(0, step) for steps 0.125, 0.25
            assert len(sleeps) == 2
            assert 0.0 <= sleeps[0] <= 0.125
            assert 0.0 <= sleeps[1] <= 0.25
        finally:
            server.stop()

    def test_retry_after_beyond_the_backoff_ceiling_is_honoured(self, sleeps):
        """The server's ask wins over the client's own backoff ceiling."""
        server = ScriptedServer(
            [(429, {"Retry-After": "12"}, {"error": "slow down"}), (200, {}, {})]
        )
        try:
            _client(server, sleeps, max_backoff_seconds=5.0)._json("GET", "/v1/health")
            assert len(sleeps) == 1
            assert 12.0 <= sleeps[0] <= 12.0 + 0.125
        finally:
            server.stop()

    def test_retry_after_is_sanity_capped(self, sleeps):
        server = ScriptedServer(
            [(429, {"Retry-After": "3600"}, {"error": "slow down"}), (200, {}, {})]
        )
        try:
            _client(server, sleeps, max_retry_after_seconds=0.5)._json(
                "GET", "/v1/health"
            )
            assert len(sleeps) == 1
            assert 0.5 <= sleeps[0] <= 0.5 + 0.125
        finally:
            server.stop()

    def test_jitter_is_deterministic_under_a_seed(self, sleeps):
        script = [
            (503, {}, {"error": "draining"}),
            (503, {}, {"error": "draining"}),
            (200, {}, {"ok": True}),
        ]
        recorded: list[list[float]] = []
        for _ in range(2):
            server = ScriptedServer(list(script))
            try:
                waits: list[float] = []
                _client(server, waits, jitter_seed=42)._json("GET", "/v1/health")
                recorded.append(waits)
            finally:
                server.stop()
        assert recorded[0] == recorded[1]
        assert len(recorded[0]) == 2

    def test_jitter_spreads_identically_rejected_clients(self):
        """Two clients rejected by the same responses must not sleep in
        lockstep — the thundering-herd failure full jitter exists to break."""
        waits: list[list[float]] = []
        for seed in (1, 2):
            server = ScriptedServer(
                [(429, {"Retry-After": "1"}, {"error": "full"}), (200, {}, {})]
            )
            try:
                sleeps: list[float] = []
                _client(server, sleeps, jitter_seed=seed)._json("GET", "/v1/health")
                waits.append(sleeps)
            finally:
                server.stop()
        assert waits[0] != waits[1]
        assert all(1.0 <= wait[0] <= 1.125 for wait in waits)

    def test_budget_exhaustion_raises_backpressure_error(self, sleeps):
        server = ScriptedServer(
            [(429, {"Retry-After": "1"}, {"error": "queue full"})] * 10
        )
        try:
            with pytest.raises(BackpressureError) as error:
                _client(server, sleeps, retries=3)._json("GET", "/v1/health")
            assert error.value.status == 429
            assert len(sleeps) == 3
        finally:
            server.stop()

    def test_retry_disabled_raises_immediately(self, sleeps):
        server = ScriptedServer([(429, {"Retry-After": "1"}, {"error": "busy"})])
        try:
            with pytest.raises(ClientError) as error:
                _client(server, sleeps, retries=0)._json("GET", "/v1/health")
            assert error.value.status == 429
            assert sleeps == []
        finally:
            server.stop()

    def test_non_backpressure_errors_are_not_retried(self, sleeps):
        server = ScriptedServer([(400, {}, {"error": "bad request"})])
        try:
            with pytest.raises(ClientError) as error:
                _client(server, sleeps)._json("GET", "/v1/health")
            assert error.value.status == 400
            assert sleeps == []
            assert len(server.requests) == 1
        finally:
            server.stop()

    def test_connection_refused_retries_then_raises(self, sleeps):
        client = Client(
            "http://127.0.0.1:9",  # discard port: nothing listens
            retries=2,
            backoff_seconds=0.01,
            sleep=sleeps.append,
        )
        with pytest.raises(ClientError) as error:
            client.health()
        assert error.value.status == 0
        assert len(sleeps) == 2

    def test_submit_argument_validation(self):
        client = Client("http://127.0.0.1:9")
        with pytest.raises(ValueError):
            client.submit(l=2)  # no payload at all
        with pytest.raises(ValueError):
            client.submit(l=2, rows=[{"a": 1}], source={"kind": "synthetic"})
        with pytest.raises(ValueError):
            client.submit(l=2, csv_text="Age\n1\n")  # csv without qi/sa
