"""Shared fixtures for the server tests: a loopback server on a thread.

The event loop runs on a background thread; tests drive the server through
the real TCP socket with :class:`repro.client.Client`, so every test
exercises the full parse -> route -> pool -> ledger path.  Jobs execute on a
*thread* executor (not the production process pool) to keep the suite fast;
cross-process store-hit semantics are preserved because each job still
re-opens the workspace run store (and ``scripts/load_smoke.py`` covers the
real process pool end to end).
"""

from __future__ import annotations

import pytest
from server_harness import ServerHandle

from repro.client import Client


@pytest.fixture
def server(tmp_path):
    """A small loopback server over a fresh workspace."""
    handle = ServerHandle(
        workspace=tmp_path / "server-ws", workers=2, queue_cap=8
    )
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    return Client(server.base_url, client_id="pytest", retries=3, backoff_seconds=0.01)


@pytest.fixture
def hospital_rows(hospital):
    """The paper's Table 1 as decoded row dicts plus its qi/sa names."""
    rows = [
        {key: str(value) for key, value in hospital.decoded_record(index).items()}
        for index in range(len(hospital))
    ]
    return rows, list(hospital.schema.qi_names), hospital.schema.sensitive.name
