"""Zero-copy result artifacts through the serving stack.

The contract under test: a worker that publishes through the columnar
artifact path must serve **byte-identical** CSV to the legacy
render-and-pickle path, repeat fetches must come from the render cache
instead of re-rendering, and the on-disk artifacts must be reclaimed with
their resident entries.
"""

from __future__ import annotations

import csv
import io

from repro.client import Client
from repro.server.pool import execute_job
from tests.server.server_harness import ServerHandle
from tests.server.test_telemetry import parse_exposition, sample

SOURCE = {"kind": "synthetic", "dataset": "SAL", "n": 400, "dimension": 3}


def _spec(**overrides) -> dict:
    spec = {
        "algorithm": "TP+",
        "l": 4,
        "metrics": [],
        "shards": None,
        "backend": None,
        "seed": 0,
        "chunk_rows": None,
        "include_rows": True,
        "source": dict(SOURCE),
    }
    spec.update(overrides)
    return spec


def _legacy_csv(header, rows) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


class TestArtifactServing:
    def test_served_csv_is_byte_identical_to_legacy_pickled_path(
        self, client, tmp_path
    ):
        job_id = client.submit(source=dict(SOURCE), l=4)
        client.wait(job_id)
        served = client.result_csv(job_id)
        # The same deterministic job through the historical path: no
        # ``result_artifact`` in the spec, so the worker renders and pickles
        # every row-string list.
        legacy = execute_job(_spec(), str(tmp_path / "legacy-ws"), False)
        assert "rows" in legacy and "result_artifact" not in legacy
        assert served == _legacy_csv(legacy["header"], legacy["rows"])

    def test_json_rows_match_legacy_and_payload_omits_them(
        self, server, client, tmp_path
    ):
        job_id = client.submit(source=dict(SOURCE), l=4)
        client.wait(job_id)
        # The resident worker payload carries the artifact pointer, not the
        # n rendered row lists that used to ride through the pickle channel.
        payload = server.server._jobs[job_id]["result"]
        assert "rows" not in payload
        info = payload["result_artifact"]
        assert info["rows"] == SOURCE["n"] and info["bytes"] > 0
        # ... while the JSON view still materializes the historical shape.
        result = client.result(job_id)
        legacy = execute_job(_spec(), str(tmp_path / "legacy-ws"), False)
        assert result["header"] == legacy["header"]
        assert result["rows"] == legacy["rows"]

    def test_repeat_csv_fetches_render_once(self, client):
        job_id = client.submit(source=dict(SOURCE), l=4)
        client.wait(job_id)
        client.result_csv(job_id)
        samples = parse_exposition(client.telemetry_text())
        assert sample(samples, "repro_result_renders_total", format="csv") == 1.0
        assert sample(samples, "repro_result_cache_hits_total", format="csv") == 0.0
        for fetches in (1, 2):
            client.result_csv(job_id)
            samples = parse_exposition(client.telemetry_text())
            assert sample(samples, "repro_result_renders_total", format="csv") == 1.0
            assert (
                sample(samples, "repro_result_cache_hits_total", format="csv")
                == fetches
            )

    def test_artifact_bytes_gauge_tracks_resident_results(self, server, client):
        job_id = client.submit(source=dict(SOURCE), l=4)
        client.wait(job_id)
        info = server.server._jobs[job_id]["result"]["result_artifact"]
        samples = parse_exposition(client.telemetry_text())
        assert sample(samples, "repro_result_artifact_bytes") == info["bytes"]


class TestArtifactLifecycle:
    def test_eviction_reclaims_the_artifact_directory(self, tmp_path):
        server = ServerHandle(
            workspace=tmp_path / "ws", workers=1, queue_cap=1, max_resident_jobs=1
        )
        try:
            client = Client(server.base_url, retries=5, backoff_seconds=0.05)
            first = client.submit(source=dict(SOURCE), l=4)
            client.wait(first)
            first_dir = server.server.workspace.results_dir / first
            assert first_dir.is_dir()
            # The resident table floor is queue_cap + workers + 1 = 3, so
            # three more terminal jobs push the first one out.
            for _ in range(3):
                client.wait(client.submit(source=dict(SOURCE), l=4))
            assert first not in server.server._jobs
            assert not first_dir.exists()
        finally:
            server.stop()

    def test_startup_clears_stale_artifacts(self, tmp_path):
        workspace = tmp_path / "ws"
        stale = workspace / "results" / "job-9999"
        stale.mkdir(parents=True)
        (stale / "meta.json").write_text("{}")
        server = ServerHandle(workspace=workspace, workers=1, queue_cap=2)
        try:
            # No ledger entry can ever serve job-9999 again: the orphan
            # directory is swept on boot.
            assert not stale.exists()
        finally:
            server.stop()
