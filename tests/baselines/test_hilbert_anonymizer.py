"""Tests for the Hilbert suppression baseline and the TP+ refiner."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import hilbert
from repro.core.eligibility import is_l_eligible
from repro.errors import IneligibleTableError
from tests.conftest import make_random_table


class TestHilbertOrder:
    def test_orders_all_rows(self, hospital):
        order = hilbert.hilbert_order(hospital)
        assert sorted(order) == list(range(len(hospital)))

    def test_subset_of_rows(self, hospital):
        order = hilbert.hilbert_order(hospital, rows=[3, 1, 5])
        assert sorted(order) == [1, 3, 5]

    def test_identical_qi_rows_stay_adjacent(self, hospital):
        order = hilbert.hilbert_order(hospital)
        positions = {row: position for position, row in enumerate(order)}
        # Adam and Bob share the exact QI vector, so they must be adjacent.
        assert abs(positions[0] - positions[1]) == 1

    def test_deterministic(self, random_table):
        assert hilbert.hilbert_order(random_table) == hilbert.hilbert_order(random_table)


class TestPartitionRows:
    def test_partitions_into_eligible_groups(self, random_table):
        groups = hilbert.partition_rows(random_table, list(range(len(random_table))), 2)
        covered = sorted(row for group in groups for row in group)
        assert covered == list(range(len(random_table)))
        for group in groups:
            counts = Counter(random_table.sa_value(row) for row in group)
            assert is_l_eligible(counts, 2)

    def test_rejects_ineligible_rows(self, hospital):
        hiv_rows = [row for row in range(len(hospital)) if hospital.sa_value(row) == hospital.schema.sensitive.encode("HIV")]
        with pytest.raises(IneligibleTableError):
            hilbert.partition_rows(hospital, hiv_rows, 2)

    def test_empty_rows(self, hospital):
        assert hilbert.partition_rows(hospital, [], 2) == []

    def test_refiner_is_partition_rows(self, random_table):
        rows = list(range(len(random_table)))
        assert hilbert.hilbert_refiner(random_table, rows, 2) == hilbert.partition_rows(
            random_table, rows, 2
        )

    @settings(deadline=None, max_examples=60)
    @given(
        n=st.integers(min_value=1, max_value=60),
        m=st.integers(min_value=2, max_value=6),
        l=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_property_valid_partitions(self, n, m, l, seed):
        table = make_random_table(n, d=3, qi_domain=4, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        groups = hilbert.partition_rows(table, list(range(n)), l)
        assert sorted(row for group in groups for row in group) == list(range(n))
        for group in groups:
            counts = Counter(table.sa_value(row) for row in group)
            assert is_l_eligible(counts, l)


class TestHilbertAnonymize:
    def test_output_is_l_diverse(self, hospital):
        result = hilbert.anonymize(hospital, 2)
        assert result.generalized.is_l_diverse(2)
        assert result.star_count == result.generalized.star_count()
        assert result.suppressed_tuple_count == result.generalized.suppressed_tuple_count()

    def test_rejects_invalid_l(self, hospital):
        with pytest.raises(ValueError):
            hilbert.anonymize(hospital, 1)
        with pytest.raises(IneligibleTableError):
            hilbert.anonymize(hospital, 3)

    def test_group_sizes_close_to_l(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        result = hilbert.anonymize(projected, 4)
        sizes = [len(rows) for rows in result.generalized.groups().values()]
        assert min(sizes) >= 4
        # Greedy closing keeps groups small: the median group is close to l.
        assert sorted(sizes)[len(sizes) // 2] <= 12

    def test_census_output_diverse(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:4])
        result = hilbert.anonymize(projected, 6)
        assert result.generalized.is_l_diverse(6)
