"""Tests for the d-dimensional Hilbert curve indexing."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.hilbert.curve import bits_needed, hilbert_index, hilbert_indices


class TestBitsNeeded:
    def test_values(self):
        assert bits_needed([2]) == 1
        assert bits_needed([4]) == 2
        assert bits_needed([5]) == 3
        assert bits_needed([79, 2, 9]) == 7
        assert bits_needed([]) == 1
        assert bits_needed([1, 1]) == 1


class TestTwoDimensionalCurve:
    def test_order_one_curve(self):
        """The classic 2x2 Hilbert 'U': (0,0) -> (0,1) -> (1,1) -> (1,0)."""
        order = sorted(
            itertools.product(range(2), repeat=2),
            key=lambda point: hilbert_index(point, bits=1),
        )
        assert order == [(0, 0), (0, 1), (1, 1), (1, 0)]

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_bijective_on_full_grid(self, bits):
        side = 2 ** bits
        points = list(itertools.product(range(side), repeat=2))
        indices = hilbert_indices(points, bits)
        assert sorted(indices) == list(range(side * side))

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_consecutive_indices_are_grid_neighbours(self, bits):
        """The defining locality property of the Hilbert curve."""
        side = 2 ** bits
        by_index = {
            hilbert_index(point, bits): point
            for point in itertools.product(range(side), repeat=2)
        }
        for index in range(side * side - 1):
            x1, y1 = by_index[index]
            x2, y2 = by_index[index + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1


class TestHigherDimensions:
    @pytest.mark.parametrize("dimension", [3, 4])
    def test_bijective(self, dimension):
        bits = 2
        side = 2 ** bits
        points = list(itertools.product(range(side), repeat=dimension))
        indices = hilbert_indices(points, bits)
        assert sorted(indices) == list(range(side ** dimension))

    @pytest.mark.parametrize("dimension", [3, 4])
    def test_adjacency(self, dimension):
        bits = 1
        side = 2
        by_index = {
            hilbert_index(point, bits): point
            for point in itertools.product(range(side), repeat=dimension)
        }
        for index in range(side ** dimension - 1):
            first = by_index[index]
            second = by_index[index + 1]
            assert sum(abs(a - b) for a, b in zip(first, second)) == 1

    def test_one_dimension_is_identity(self):
        for value in range(8):
            assert hilbert_index((value,), bits=3) == value


class TestValidation:
    def test_empty_coords_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index((), 2)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index((0, 0), 0)

    def test_out_of_range_coordinate_rejected(self):
        with pytest.raises(ValueError):
            hilbert_index((4, 0), bits=2)
        with pytest.raises(ValueError):
            hilbert_index((-1, 0), bits=2)


class TestProperties:
    @given(
        coords=st.lists(st.integers(min_value=0, max_value=15), min_size=2, max_size=5),
    )
    def test_index_in_range(self, coords):
        bits = 4
        index = hilbert_index(coords, bits)
        assert 0 <= index < 2 ** (bits * len(coords))

    @given(
        first=st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
        second=st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
    )
    def test_distinct_points_have_distinct_indices(self, first, second):
        if first == second:
            return
        assert hilbert_index(first, 3) != hilbert_index(second, 3)
