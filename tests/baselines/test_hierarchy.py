"""Tests for the generalization taxonomies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.hierarchy import Taxonomy
from repro.dataset.table import Attribute


class TestBalancedTaxonomy:
    def test_single_value_domain(self):
        taxonomy = Taxonomy.balanced(1)
        assert len(taxonomy) == 1
        assert taxonomy.is_leaf(taxonomy.root_id)
        assert taxonomy.width(taxonomy.root_id) == 1

    def test_root_covers_domain(self):
        taxonomy = Taxonomy.balanced(10, fanout=3)
        assert taxonomy.width(taxonomy.root_id) == 10
        assert list(taxonomy.codes_under(taxonomy.root_id)) == list(range(10))

    def test_children_partition_parent(self):
        taxonomy = Taxonomy.balanced(11, fanout=3)
        for node_id in range(len(taxonomy)):
            children = taxonomy.children(node_id)
            if not children:
                continue
            covered = []
            for child_id in children:
                covered.extend(taxonomy.codes_under(child_id))
            assert sorted(covered) == list(taxonomy.codes_under(node_id))

    def test_fanout_respected(self):
        taxonomy = Taxonomy.balanced(30, fanout=4)
        for node_id in range(len(taxonomy)):
            assert len(taxonomy.children(node_id)) <= 4

    def test_leaves_are_single_codes(self):
        taxonomy = Taxonomy.balanced(7, fanout=2)
        leaves = [node_id for node_id in range(len(taxonomy)) if taxonomy.is_leaf(node_id)]
        assert len(leaves) == 7
        assert all(taxonomy.width(leaf) == 1 for leaf in leaves)

    def test_leaf_for_code_and_child_covering(self):
        taxonomy = Taxonomy.balanced(9, fanout=3)
        for code in range(9):
            leaf = taxonomy.leaf_for_code(code)
            assert list(taxonomy.codes_under(leaf)) == [code]
            child = taxonomy.child_covering(taxonomy.root_id, code)
            assert code in taxonomy.codes_under(child)

    def test_child_covering_out_of_range(self):
        taxonomy = Taxonomy.balanced(4, fanout=2)
        with pytest.raises(ValueError):
            taxonomy.child_covering(taxonomy.root_id, 99)

    def test_for_attribute(self):
        attribute = Attribute("Age", tuple(range(12)))
        taxonomy = Taxonomy.for_attribute(attribute, fanout=3)
        assert taxonomy.domain_size == 12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Taxonomy.balanced(0)
        with pytest.raises(ValueError):
            Taxonomy.balanced(5, fanout=1)

    def test_height_grows_logarithmically(self):
        assert Taxonomy.balanced(3, fanout=3).height() == 1
        assert Taxonomy.balanced(27, fanout=3).height() == 3

    @given(size=st.integers(min_value=1, max_value=60), fanout=st.integers(min_value=2, max_value=5))
    def test_every_code_reachable(self, size, fanout):
        taxonomy = Taxonomy.balanced(size, fanout=fanout)
        for code in range(size):
            node = taxonomy.leaf_for_code(code)
            assert taxonomy.is_leaf(node)
            # Walking up via parents reaches the root.
            depth = 0
            while node is not None:
                parent = taxonomy.node(node).parent_id
                if parent is None:
                    assert node == taxonomy.root_id
                node = parent
                depth += 1
                assert depth <= taxonomy.height() + 1
