"""Tests for the TDS single-dimensional generalization baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import tds
from repro.baselines.hierarchy import Taxonomy
from repro.dataset.generalized import STAR
from repro.errors import IneligibleTableError
from repro.metrics.kl import kl_divergence
from tests.conftest import make_random_table


class TestTDSBasics:
    def test_output_is_l_diverse(self, hospital):
        result = tds.anonymize(hospital, 2)
        assert result.generalized.is_l_diverse(2)
        assert result.group_count >= 1
        assert result.specializations >= 0

    def test_no_stars_only_subdomains(self, hospital):
        result = tds.anonymize(hospital, 2)
        for row in range(len(result.generalized)):
            for cell in result.generalized.row_cells(row):
                assert cell is not STAR

    def test_single_dimensional_property(self, random_table):
        """All rows sharing a code must share the same generalized cell."""
        result = tds.anonymize(random_table, 2)
        for position in range(random_table.dimension):
            cell_by_code: dict[int, object] = {}
            for row in range(len(random_table)):
                code = random_table.qi_row(row)[position]
                cell = result.generalized.cell(row, position)
                if code in cell_by_code:
                    assert cell_by_code[code] == cell
                else:
                    cell_by_code[code] = cell

    def test_cells_cover_original_codes(self, random_table):
        result = tds.anonymize(random_table, 2)
        for row in range(len(random_table)):
            for position in range(random_table.dimension):
                code = random_table.qi_row(row)[position]
                cell = result.generalized.cell(row, position)
                if isinstance(cell, frozenset):
                    assert code in cell
                else:
                    assert cell == code

    def test_rejects_invalid_inputs(self, hospital):
        with pytest.raises(ValueError):
            tds.anonymize(hospital, 1)
        with pytest.raises(IneligibleTableError):
            tds.anonymize(hospital, 3)

    def test_custom_taxonomies(self, hospital):
        taxonomies = tuple(
            Taxonomy.for_attribute(attribute, fanout=2) for attribute in hospital.schema.qi
        )
        result = tds.anonymize(hospital, 2, taxonomies=taxonomies)
        assert result.generalized.is_l_diverse(2)
        assert result.taxonomies == taxonomies

    def test_wrong_taxonomy_count_rejected(self, hospital):
        with pytest.raises(ValueError):
            tds.anonymize(hospital, 2, taxonomies=(Taxonomy.balanced(3),))


class TestTDSBehaviour:
    def test_larger_l_means_more_generalization(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        loose = tds.anonymize(projected, 2)
        strict = tds.anonymize(projected, 8)
        assert strict.specializations <= loose.specializations
        assert kl_divergence(projected, strict.generalized) >= kl_divergence(
            projected, loose.generalized
        ) - 1e-9

    def test_specializations_improve_utility_over_root(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        result = tds.anonymize(projected, 2)
        if result.specializations == 0:
            pytest.skip("no specialization was valid at this scale")
        # Fully generalized table = single group with full-domain cells.
        from repro.dataset.generalized import GeneralizedTable

        root_cells = tuple(
            frozenset(range(attribute.size)) for attribute in projected.schema.qi
        )
        baseline = GeneralizedTable(
            projected.schema,
            [root_cells] * len(projected),
            list(projected.sa_values),
            [0] * len(projected),
        )
        assert kl_divergence(projected, result.generalized) <= kl_divergence(
            projected, baseline
        ) + 1e-9

    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=2, max_value=5),
        l=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_always_l_diverse(self, n, m, l, seed):
        table = make_random_table(n, d=2, qi_domain=5, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        result = tds.anonymize(table, l)
        assert result.generalized.is_l_diverse(l)
