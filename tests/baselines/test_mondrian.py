"""Tests for the Mondrian multi-dimensional baseline (extension experiment)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import mondrian
from repro.dataset.generalized import STAR, cell_contains
from repro.errors import IneligibleTableError
from tests.conftest import make_random_table


class TestMondrian:
    def test_output_is_l_diverse(self, hospital):
        result = mondrian.anonymize(hospital, 2)
        assert result.generalized.is_l_diverse(2)
        assert result.group_count >= 1

    def test_cells_cover_original_values(self, random_table):
        result = mondrian.anonymize(random_table, 2)
        sizes = [attribute.size for attribute in random_table.schema.qi]
        for row in range(len(random_table)):
            for position in range(random_table.dimension):
                cell = result.generalized.cell(row, position)
                assert cell is not STAR
                assert cell_contains(cell, random_table.qi_row(row)[position], sizes[position])

    def test_splits_when_possible(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        result = mondrian.anonymize(projected, 2)
        assert result.group_count > 1

    def test_rejects_invalid_inputs(self, hospital):
        with pytest.raises(ValueError):
            mondrian.anonymize(hospital, 1)
        with pytest.raises(IneligibleTableError):
            mondrian.anonymize(hospital, 3)

    def test_more_groups_than_suppression_single_group(self, small_census):
        """Multi-dimensional generalization retains more structure than one big group."""
        projected = small_census.project(small_census.schema.qi_names[:2])
        result = mondrian.anonymize(projected, 4)
        assert result.group_count >= len(projected) // (4 * 8)

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(min_value=1, max_value=50),
        m=st.integers(min_value=2, max_value=5),
        l=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_always_l_diverse(self, n, m, l, seed):
        table = make_random_table(n, d=3, qi_domain=4, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        result = mondrian.anonymize(table, l)
        assert result.generalized.is_l_diverse(l)
        covered = sorted(row for rows in result.partition for row in rows)
        assert covered == list(range(n))
