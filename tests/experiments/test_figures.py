"""Integration tests for the figure drivers (tiny scale).

These tests assert the *qualitative shape* the paper reports, which is the
actual reproduction target: who wins, how metrics move with l, d and n.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        n=900,
        seed=11,
        max_tables_per_family=1,
        l_values=(2, 6),
        d_values=(1, 3),
        sample_sizes=(300, 900),
        domain_scale=0.2,
    )


def _series_values(result, algorithm):
    return [value for _x, value in sorted(result.series[algorithm])]


class TestFigure2:
    def test_shape(self, tiny_config):
        result = figures.figure2("SAL", tiny_config)
        assert set(result.series) == {"Hilbert", "TP", "TP+"}
        for algorithm in result.series:
            xs = [x for x, _ in result.series[algorithm]]
            assert xs == [2.0, 6.0]
        # Stars grow with l, and TP+ never exceeds TP.
        for algorithm in result.series:
            values = _series_values(result, algorithm)
            assert values[0] <= values[-1]
        assert all(
            plus <= tp + 1e-9
            for plus, tp in zip(_series_values(result, "TP+"), _series_values(result, "TP"))
        )

    def test_records_collected(self, tiny_config):
        result = figures.figure2("SAL", tiny_config)
        assert len(result.records) == 2 * 3  # two l values, three algorithms
        assert result.format().startswith("Figure 2")


class TestFigure3:
    def test_shape(self, tiny_config):
        result = figures.figure3("OCC", tiny_config)
        assert set(result.series) == {"Hilbert", "TP", "TP+"}
        for algorithm in result.series:
            values = _series_values(result, algorithm)
            assert values[0] <= values[-1] + 1e-9  # stars grow with d


class TestTimingFigures:
    def test_figure4_and_5_and_6_produce_positive_times(self, tiny_config):
        for driver in (figures.figure4, figures.figure5, figures.figure6):
            result = driver("SAL", tiny_config)
            for points in result.series.values():
                assert all(value >= 0 for _x, value in points)
                assert len(points) >= 2

    def test_figure6_x_axis_is_cardinality(self, tiny_config):
        result = figures.figure6("SAL", tiny_config)
        xs = sorted({x for points in result.series.values() for x, _ in points})
        assert xs == [300.0, 900.0]


class TestKLFigures:
    def test_figure7_tp_plus_beats_tds(self, tiny_config):
        result = figures.figure7("SAL", tiny_config)
        assert set(result.series) == {"TDS", "TP+"}
        tds_values = _series_values(result, "TDS")
        tp_plus_values = _series_values(result, "TP+")
        # The paper's headline utility result: TP+ has lower KL-divergence.
        assert all(plus <= tds + 1e-9 for plus, tds in zip(tp_plus_values, tds_values))

    def test_figure8_runs(self, tiny_config):
        result = figures.figure8("SAL", tiny_config)
        assert set(result.series) == {"TDS", "TP+"}
        assert "Figure 8" in result.format()


class TestPhase3Frequency:
    def test_phase3_rare_on_census_workloads(self, tiny_config):
        result = figures.phase3_frequency("SAL", tiny_config)
        assert result.runs == len(tiny_config.d_values) * len(tiny_config.l_values)
        assert result.phase3_terminations == 0  # the paper's observation
        assert result.phase3_fraction == 0.0
        assert "phase 3" in result.format()


class TestFigureResultFormatting:
    def test_format_handles_missing_points(self):
        result = figures.FigureResult(name="x", dataset="d", x_label="l", y_label="y")
        result.add_point("A", 1.0, 2.0)
        result.add_point("B", 2.0, 3.0)
        text = result.format()
        assert "-" in text
        assert "A" in text and "B" in text

    def test_to_csv_round_trip(self, tmp_path):
        import csv

        result = figures.FigureResult(name="x", dataset="d", x_label="l", y_label="y")
        result.add_point("A", 2.0, 10.0)
        result.add_point("A", 4.0, 20.0)
        result.add_point("B", 2.0, 5.0)
        path = tmp_path / "series.csv"
        result.to_csv(str(path))
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["l", "A", "B"]
        assert rows[1] == ["2.0", "10.0", "5.0"]
        assert rows[2] == ["4.0", "20.0", ""]
