"""Tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    ALGORITHMS,
    RunRecord,
    average_by,
    format_records,
    run_algorithm,
    run_suite,
)


class TestRunAlgorithm:
    def test_known_algorithms_registered(self):
        assert set(ALGORITHMS) == {"TP", "TP+", "Hilbert", "TDS", "Mondrian"}

    def test_unknown_algorithm_raises(self, hospital):
        with pytest.raises(KeyError):
            run_algorithm("nope", hospital, 2)

    @pytest.mark.parametrize("name", ["TP", "TP+", "Hilbert", "TDS", "Mondrian"])
    def test_each_algorithm_produces_a_record(self, hospital, name):
        record = run_algorithm(name, hospital, 2, dataset="hospital")
        assert record.algorithm == name
        assert record.dataset == "hospital"
        assert record.l == 2
        assert record.d == 3
        assert record.n == 10
        assert record.seconds >= 0
        assert record.groups >= 1
        assert record.kl is None

    def test_tp_record_reports_phase(self, hospital):
        record = run_algorithm("TP", hospital, 2)
        assert record.phase_reached == 1
        assert record.stars == 8

    def test_kl_flag(self, hospital):
        record = run_algorithm("TP+", hospital, 2, with_kl=True)
        assert record.kl is not None
        assert record.kl >= 0


class TestSuiteAndAggregation:
    def test_run_suite(self, hospital):
        records = run_suite([("h1", hospital), ("h2", hospital)], 2, ["TP", "Hilbert"])
        assert len(records) == 4
        assert {record.dataset for record in records} == {"h1", "h2"}

    def test_average_by_algorithm(self, hospital):
        records = run_suite([("h1", hospital), ("h2", hospital)], 2, ["TP", "Hilbert"])
        averages = average_by(records, "stars")
        assert averages[("TP",)] == 8.0
        assert ("Hilbert",) in averages

    def test_average_by_skips_missing_metric(self):
        records = [
            RunRecord("TP", "x", 2, 3, 10, 8, 4, 0.1, 3, kl=None),
            RunRecord("TP", "y", 2, 3, 10, 6, 3, 0.1, 3, kl=1.5),
        ]
        averages = average_by(records, "kl")
        assert averages[("TP",)] == 1.5

    def test_format_records(self, hospital):
        records = run_suite([("hospital", hospital)], 2, ["TP"])
        text = format_records(records)
        assert "algorithm" in text
        assert "TP" in text
        assert "hospital" in text

    def test_format_records_empty(self):
        assert "algorithm" in format_records([])


class TestParallelSuite:
    def test_workers_produce_same_records(self, hospital):
        sequential = run_suite([("h1", hospital), ("h2", hospital)], 2, ["TP", "Hilbert"])
        parallel = run_suite(
            [("h1", hospital), ("h2", hospital)], 2, ["TP", "Hilbert"], workers=2
        )
        key = lambda record: (  # noqa: E731 - everything except the timing
            record.algorithm,
            record.dataset,
            record.l,
            record.d,
            record.n,
            record.stars,
            record.suppressed_tuples,
            record.groups,
            record.phase_reached,
            record.kl,
        )
        assert [key(record) for record in parallel] == [key(record) for record in sequential]

    def test_workers_one_is_sequential(self, hospital):
        records = run_suite([("h", hospital)], 2, ["TP"], workers=1)
        assert len(records) == 1


class TestCacheSummary:
    def test_summary_reports_both_tiers(self, hospital, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.experiments.harness import cache_summary, run_algorithm
        from repro.service.store import RunStore

        path = tmp_path / "runs.jsonl"
        warm = ResultCache(store=RunStore(path))
        run_algorithm("TP", hospital, 2, cache=warm)  # miss; persisted
        # Fresh cache over the same store file: the hit must come from the
        # persistent tier and the summary line must say so.
        cold = ResultCache(store=RunStore(path))
        run_algorithm("TP", hospital, 2, cache=cold)
        summary = cache_summary(cold)
        assert "1 store hits" in summary
        assert "0 memory hits" in summary
        assert "persisted" in summary

    def test_summary_defaults_to_the_process_cache(self):
        from repro.experiments.harness import cache_summary

        assert cache_summary().startswith("run cache:")


class TestAutoWorkers:
    def test_default_workers_resolve_via_planner(self, hospital):
        from repro.experiments.harness import run_suite

        # workers=None must resolve (planner says sequential at this scale)
        # and produce the same records as an explicit sequential run.
        auto = run_suite([("h", hospital)], 2, ["TP"])
        explicit = run_suite([("h", hospital)], 2, ["TP"], workers=1)
        assert [record.stars for record in auto] == [record.stars for record in explicit]
