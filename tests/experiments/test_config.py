"""Tests for the experiment configuration presets."""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig


class TestPresets:
    def test_smoke_is_smaller_than_default(self):
        smoke = ExperimentConfig.smoke()
        default = ExperimentConfig.default()
        assert smoke.n < default.n
        assert len(smoke.l_values) < len(default.l_values)
        assert smoke.max_tables_per_family <= default.max_tables_per_family

    def test_paper_scale_matches_paper_parameters(self):
        paper = ExperimentConfig.paper_scale()
        assert paper.n == 600_000
        assert paper.max_tables_per_family is None
        assert paper.domain_scale == 1.0
        assert paper.sample_sizes[-1] == 600_000

    def test_default_sweeps_match_paper_ranges(self):
        config = ExperimentConfig.default()
        assert config.l_values == tuple(range(2, 11))
        assert config.d_values == tuple(range(1, 8))
        assert config.l_for_d_sweep == 6
        assert config.l_for_time_d_sweep == 4
        assert config.l_for_cardinality_sweep == 6
        assert config.base_dimension == 4

    def test_frozen(self):
        config = ExperimentConfig.smoke()
        try:
            config.n = 5
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("ExperimentConfig should be immutable")
