"""Raw-speed path regressions: vectorized scan, spill, and scale calibration."""

from __future__ import annotations

import json

import pytest

from repro.backend import use_backend
from repro.dataset.synthetic import CensusConfig, make_sal
from repro.engine import CsvSource
from repro.service.planner import (
    DEFAULT_RATES,
    ExecutionPlanner,
    PlannerCalibration,
    _nlogn,
    load_bench_calibration,
    load_scale_rates,
)
from repro.service.streaming import _scan, _scan_reference
from repro.engine.registry import algorithm_registry

QI = ("Age", "Gender", "Race")
SA = "Income"


@pytest.fixture(scope="module")
def census_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("scale") / "census.csv"
    make_sal(2_000, seed=11, config=CensusConfig.scaled(0.25)).project(QI).to_csv(
        str(path)
    )
    return str(path)


# ------------------------------------------------------------ scan regression


class TestVectorizedScan:
    def test_matches_per_tuple_oracle(self, census_csv):
        source = CsvSource(census_csv, QI, SA)
        with use_backend("numpy"):
            histograms, n = _scan(source, chunk_rows=333)
        expected_histograms, expected_n = _scan_reference(source, chunk_rows=333)
        assert n == expected_n
        assert histograms == expected_histograms

    def test_chunk_size_invariant(self, census_csv):
        source = CsvSource(census_csv, QI, SA)
        with use_backend("numpy"):
            small, n_small = _scan(source, chunk_rows=7)
            large, n_large = _scan(source, chunk_rows=10_000)
        assert n_small == n_large
        assert small == large

    def test_reference_backend_uses_reference_path(self, census_csv):
        source = CsvSource(census_csv, QI, SA)
        with use_backend("reference"):
            histograms, n = _scan(source, chunk_rows=333)
        expected_histograms, expected_n = _scan_reference(source, chunk_rows=333)
        assert (histograms, n) == (expected_histograms, expected_n)


# ------------------------------------------------------- scale-rate loading


def _scale_payload(algorithm="TP+", points=None):
    return {
        "benchmark": "scale",
        "config": {"algorithm": algorithm},
        "points": points
        if points is not None
        else [
            {"n": 100_000, "backend": "numpy", "seconds": {"anonymize": 0.2}},
            {"n": 1_000_000, "backend": "numpy", "seconds": {"anonymize": 1.0}},
            {"n": 1_000_000, "backend": "reference", "seconds": {"anonymize": 4.0}},
        ],
    }


class TestLoadScaleRates:
    def test_picks_largest_n_per_backend(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        path.write_text(json.dumps(_scale_payload()))
        rates, source = load_scale_rates(path)
        assert source == str(path)
        assert rates["numpy"]["TP+"] == pytest.approx(1.0 / _nlogn(1_000_000))
        assert rates["reference"]["TP+"] == pytest.approx(4.0 / _nlogn(1_000_000))

    def test_missing_file_falls_through(self, tmp_path):
        rates, source = load_scale_rates(tmp_path / "absent.json")
        assert (rates, source) == ({}, "")

    def test_corrupt_file_falls_through(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        path.write_text("{not json")
        assert load_scale_rates(path) == ({}, "")

    def test_zero_second_points_are_ignored(self, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        path.write_text(
            json.dumps(
                _scale_payload(
                    points=[
                        {"n": 10, "backend": "numpy", "seconds": {"anonymize": 0.0}}
                    ]
                )
            )
        )
        assert load_scale_rates(path) == ({}, "")

    def test_scale_rates_override_fig6_rates(self, tmp_path):
        fig6 = tmp_path / "BENCH_fig6.json"
        fig6.write_text(
            json.dumps(
                {"seconds": {"numpy": {"TP+": {"5000": 1.0}, "TP": {"5000": 2.0}}}}
            )
        )
        scale = tmp_path / "BENCH_scale.json"
        scale.write_text(json.dumps(_scale_payload()))
        calibration = load_bench_calibration(fig6, scale_path=scale)
        # TP+ rate comes from the large-n trajectory, TP keeps the fig6 rate.
        assert calibration.rate("TP+", "numpy") == pytest.approx(
            1.0 / _nlogn(1_000_000)
        )
        assert calibration.rate("TP", "numpy") == pytest.approx(2.0 / _nlogn(5_000))
        assert str(fig6) in calibration.source
        assert str(scale) in calibration.source

    def test_defaults_without_any_baseline(self, tmp_path):
        calibration = load_bench_calibration(
            tmp_path / "absent_fig6.json", scale_path=tmp_path / "absent_scale.json"
        )
        assert calibration.source == "defaults"
        assert calibration.rate("TP+", "numpy") == DEFAULT_RATES["numpy"]


# ------------------------------------------------------- planner monotonicity


class TestPlannerScaleBehaviour:
    CALIBRATION = PlannerCalibration(
        rates={"numpy": {"TP+": 1.0e-7}, "reference": {"TP+": 4.0e-7}},
        source="test",
    )

    def _shards_at(self, n: int) -> int:
        planner = ExecutionPlanner(calibration=self.CALIBRATION, cpu_count=8)
        info = algorithm_registry.get("TP+")
        return planner.decide(info, n=n, d=3, l=6, backend="numpy").shards

    def test_shard_choice_is_monotone_in_n(self):
        sizes = [1_000, 5_000, 20_000, 100_000, 500_000, 2_000_000, 10_000_000, 30_000_000]
        shard_counts = [self._shards_at(n) for n in sizes]
        assert shard_counts == sorted(shard_counts)
        assert shard_counts[0] == 1  # small tables are never sharded
        assert shard_counts[-1] > 1  # huge tables always fan out

    def test_scale_calibration_changes_the_estimate_not_the_contract(self):
        planner = ExecutionPlanner(calibration=self.CALIBRATION, cpu_count=8)
        info = algorithm_registry.get("TP+")
        decision = planner.decide(info, n=1_000_000, d=3, l=6, backend="numpy")
        assert decision.estimated_seconds > 0
        assert decision.shards * min(decision.workers, 8) >= decision.workers
        assert any("calibration" in reason for reason in decision.reasons)
