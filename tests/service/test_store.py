"""Tests for the persistent RunStore: round-trips, eviction, recovery."""

from __future__ import annotations

import json

import pytest

from repro.engine.cache import CachedRun, ResultCache
from repro.privacy.spec import EntropyLDiversity, FrequencyLDiversity
from repro.engine.registry import algorithm_registry
from repro.service.store import RunStore


def _cached_run(table, algorithm: str = "TP", l: int = 2) -> CachedRun:
    output = algorithm_registry.get(algorithm).runner(table, l)
    return CachedRun(output=output, anonymize_seconds=0.25, shard_sizes=(len(table),))


def _key(table, algorithm: str = "TP", l: int = 2, **kwargs):
    return ResultCache.key(table.fingerprint(), algorithm, l, **kwargs)


class TestRoundTrip:
    def test_put_get_round_trip(self, hospital, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        run = _cached_run(hospital)
        key = _key(hospital)
        store.put(key, run)
        restored = store.get(key, hospital)
        assert restored is not None
        assert restored.output.generalized.cell_rows == run.output.generalized.cell_rows
        assert restored.output.generalized.sa_values == run.output.generalized.sa_values
        assert restored.anonymize_seconds == run.anonymize_seconds
        assert restored.shard_sizes == run.shard_sizes
        assert restored.output.phase_reached == run.output.phase_reached

    def test_round_trip_survives_process_restart(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        run = _cached_run(hospital)
        key = _key(hospital)
        RunStore(path).put(key, run)
        # A fresh instance simulates a fresh process reading the same file.
        fresh = RunStore(path)
        restored = fresh.get(key, hospital)
        assert restored is not None
        assert restored.output.generalized.cell_rows == run.output.generalized.cell_rows
        assert fresh.stats()["hits"] == 1

    def test_subdomain_cells_round_trip(self, hospital, tmp_path):
        """Frozenset cells (TDS / Mondrian outputs) survive the JSON codec."""
        store = RunStore(tmp_path / "runs.jsonl")
        run = _cached_run(hospital, algorithm="Mondrian")
        key = _key(hospital, algorithm="Mondrian")
        store.put(key, run)
        restored = RunStore(store.path).get(key, hospital)
        assert restored is not None
        assert restored.output.generalized.cell_rows == run.output.generalized.cell_rows

    def test_miss_counts(self, hospital, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        assert store.get(_key(hospital), hospital) is None
        assert store.stats()["misses"] == 1


class TestEviction:
    def test_max_entries_evicts_oldest(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path, max_entries=2)
        run = _cached_run(hospital)
        keys = [_key(hospital, l=l) for l in (2, 3, 4)]
        for key in keys:
            store.put(key, run)
        assert len(store) == 2
        assert keys[0] not in store
        assert keys[1] in store and keys[2] in store
        # The file was compacted to the live entries.
        with open(path) as handle:
            assert sum(1 for _line in handle) == 2

    def test_reopen_applies_cap(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        big = RunStore(path, max_entries=16)
        run = _cached_run(hospital)
        for l in (2, 3, 4, 5):
            big.put(_key(hospital, l=l), run)
        small = RunStore(path, max_entries=2)
        assert len(small) == 2
        assert small.get(_key(hospital, l=5), hospital) is not None


class TestRecovery:
    def test_corrupt_lines_are_skipped_and_compacted(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        run = _cached_run(hospital)
        store.put(_key(hospital, l=2), run)
        store.put(_key(hospital, l=3), run)
        # Corrupt the file: garbage line + torn (truncated) trailing record.
        lines = path.read_text().splitlines()
        lines.insert(1, "{not json at all")
        lines.append('{"key": ["only", "three", 3]}')
        lines.append(lines[0][: len(lines[0]) // 2])
        path.write_text("\n".join(lines) + "\n")

        recovered = RunStore(path)
        assert len(recovered) == 2
        assert recovered.recovered == 3
        assert recovered.get(_key(hospital, l=2), hospital) is not None
        # Recovery compacts: a subsequent reopen sees only clean records.
        clean = RunStore(path)
        assert clean.recovered == 0
        assert len(clean) == 2

    def test_row_count_mismatch_treated_as_stale(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        key = _key(hospital)
        store.put(key, _cached_run(hospital))
        shrunk = hospital.subset(range(len(hospital) - 1))
        assert store.get(key, shrunk) is None
        assert key not in store  # dropped, not replayed against the wrong table

    def test_empty_and_blank_lines_tolerated(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("\n\n")
        store = RunStore(path)
        assert len(store) == 0
        store.put(_key(hospital), _cached_run(hospital))
        assert RunStore(path).get(_key(hospital), hospital) is not None


class TestReadThroughCache:
    def test_cache_falls_through_to_store(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        run = _cached_run(hospital)
        key = _key(hospital)
        RunStore(path).put(key, run)

        cache = ResultCache(store=RunStore(path))
        entry, tier = cache.lookup(key, hospital)
        assert entry is not None and tier == "store"
        assert cache.stats()["store_hits"] == 1
        # The hit was promoted: next lookup answers from memory.
        entry, tier = cache.lookup(key, hospital)
        assert tier == "memory"

    def test_cache_writes_through(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        cache = ResultCache(store=RunStore(path))
        key = _key(hospital)
        cache.put(key, _cached_run(hospital))
        assert RunStore(path).get(key, hospital) is not None

    def test_without_table_store_tier_is_skipped(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunStore(path).put(_key(hospital), _cached_run(hospital))
        cache = ResultCache(store=RunStore(path))
        assert cache.get(_key(hospital)) is None  # no table to rehydrate against


class TestValidation:
    def test_rejects_bad_max_entries(self, tmp_path):
        with pytest.raises(ValueError):
            RunStore(tmp_path / "runs.jsonl", max_entries=0)

    def test_records_are_compact_json(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunStore(path).put(_key(hospital), _cached_run(hospital))
        record = json.loads(path.read_text().splitlines()[0])
        assert set(record) >= {"key", "n", "group_cells", "group_ids", "anonymize_seconds"}
        assert record["n"] == len(hospital)


class TestHardening:
    def test_incomplete_record_is_dropped_not_crashed(self, hospital, tmp_path):
        """A JSON-valid record missing timing fields must not crash get()."""
        path = tmp_path / "runs.jsonl"
        key = _key(hospital)
        record = {
            "key": list(key),
            "n": len(hospital),
            "group_cells": [[0] * hospital.dimension],
            "group_ids": [0] * len(hospital),
            # anonymize_seconds / shard_sizes / phase_reached missing
        }
        path.write_text(json.dumps(record) + "\n")
        store = RunStore(path)
        assert len(store) == 0  # rejected at parse time
        assert store.get(key, hospital) is None

    def test_undecodable_cell_is_dropped_not_crashed(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        key = _key(hospital)
        record = {
            "key": list(key),
            "n": len(hospital),
            "group_cells": [[None] * hospital.dimension],  # not int/"*"/{"s":[...]}
            "group_ids": [0] * len(hospital),
            "anonymize_seconds": 0.1,
            "shard_sizes": [len(hospital)],
            "phase_reached": 1,
        }
        path.write_text(json.dumps(record) + "\n")
        store = RunStore(path)
        assert store.get(key, hospital) is None
        assert key not in store
        assert store.recovered == 1

    def test_wrong_cell_width_is_dropped(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        key = _key(hospital)
        record = {
            "key": list(key),
            "n": len(hospital),
            "group_cells": [[0]],  # too narrow for the hospital schema
            "group_ids": [0] * len(hospital),
            "anonymize_seconds": 0.1,
            "shard_sizes": [len(hospital)],
            "phase_reached": None,
        }
        path.write_text(json.dumps(record) + "\n")
        assert RunStore(path).get(key, hospital) is None

    def test_compaction_preserves_concurrent_appends(self, hospital, tmp_path):
        """Records appended by another process survive this process's compaction."""
        path = tmp_path / "runs.jsonl"
        ours = RunStore(path, max_entries=3)
        run = _cached_run(hospital)
        ours.put(_key(hospital, l=2), run)
        # Another process appends a record after we loaded the file.
        other = RunStore(path, max_entries=3)
        other.put(_key(hospital, l=3), run)
        # Our next put crosses max_entries and triggers compaction.
        ours.put(_key(hospital, l=4), run)
        ours.put(_key(hospital, l=5), run)
        assert len(ours) == 3
        reread = RunStore(path)
        assert reread.get(_key(hospital, l=3), hospital) is not None  # not clobbered


class TestPrivacyKeyMigration:
    """The cache/store key grew a canonical privacy-spec token (7th element)."""

    def test_default_key_carries_the_frequency_token(self, hospital):
        key = _key(hospital, l=3)
        assert len(key) == 7
        assert key[-1] == FrequencyLDiversity(3).token()

    def test_specs_with_equal_l_never_share_a_record(self, hospital, tmp_path):
        # Regression: pre-migration an entropy-checked rerun could replay a
        # frequency-l record computed without the enforcement pass.
        store = RunStore(tmp_path / "runs.jsonl")
        frequency_key = _key(hospital, l=2)
        entropy_key = _key(hospital, l=2, privacy=EntropyLDiversity(2.0))
        assert frequency_key != entropy_key
        store.put(frequency_key, _cached_run(hospital))
        assert store.get(entropy_key, hospital) is None
        assert store.get(frequency_key, hospital) is not None

    def test_spec_separation_survives_process_restart(self, hospital, tmp_path):
        path = tmp_path / "runs.jsonl"
        RunStore(path).put(_key(hospital, l=2), _cached_run(hospital))
        fresh = RunStore(path)
        assert fresh.get(_key(hospital, l=2, privacy=EntropyLDiversity(2.0)), hospital) is None
        assert fresh.get(_key(hospital, l=2), hospital) is not None

    def test_legacy_six_element_records_are_dropped_on_load(self, hospital, tmp_path):
        # A store written before the migration holds 6-element keys; they
        # must be treated as unparseable (recovered + compacted away), never
        # replayed under whatever spec happens to share the l value.
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        store.put(_key(hospital, l=2), _cached_run(hospital))
        record = json.loads(path.read_text().splitlines()[0])
        legacy = dict(record)
        legacy["key"] = record["key"][:6]  # strip the privacy token
        legacy["anonymize_seconds"] = 9.9
        path.write_text(json.dumps(legacy) + "\n")
        fresh = RunStore(path)
        assert fresh.recovered == 1
        assert len(fresh) == 0
        assert fresh.get(_key(hospital, l=2), hospital) is None
