"""Tests for the bounded-memory CSV-to-CSV streaming pipeline."""

from __future__ import annotations

import csv

import pytest

from repro.dataset.synthetic import CensusConfig, make_sal
from repro.engine import CsvSource, Engine, ResultCache, RunPlan
from repro.errors import IneligibleTableError
from repro.service.streaming import stream_anonymize, verify_csv_l_diverse

QI = ("Age", "Gender", "Race")
SA = "Income"


@pytest.fixture(scope="module")
def census_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "census.csv"
    table = make_sal(1_200, seed=7, config=CensusConfig.scaled(0.25)).project(QI)
    table.to_csv(str(path))
    return str(path), table


def _source(path: str) -> CsvSource:
    return CsvSource(path, QI, SA)


def _published_rows(path: str) -> list[tuple[str, ...]]:
    with open(path, newline="") as handle:
        return [tuple(row[name] for name in (*QI, SA)) for row in csv.DictReader(handle)]


class TestStreamAnonymize:
    def test_matches_in_memory_sharded_run(self, census_csv, tmp_path):
        """Streaming and the in-memory engine build identical QI-prefix shards,
        so their published tables agree as multisets of rendered rows."""
        path, _table = census_csv
        output = str(tmp_path / "streamed.csv")
        report = stream_anonymize(
            _source(path), output, algorithm="TP", l=3, shards=3, chunk_rows=250
        )
        in_memory = Engine(cache=ResultCache()).run(
            RunPlan(source=_source(path), algorithm="TP", l=3, shards=3)
        )
        assert report.n == in_memory.n
        assert report.shard_sizes == in_memory.shard_sizes
        assert report.stars == in_memory.generalized.star_count()
        assert report.suppressed_tuples == in_memory.generalized.suppressed_tuple_count()
        from repro.engine.sinks import render_cell_value

        expected = sorted(
            tuple(str(render_cell_value(record[name])) for name in (*QI, SA))
            for record in in_memory.generalized.decoded_records()
        )
        assert sorted(_published_rows(output)) == expected

    def test_chunk_size_does_not_change_the_result(self, census_csv, tmp_path):
        path, _table = census_csv
        small = str(tmp_path / "small-chunks.csv")
        large = str(tmp_path / "large-chunks.csv")
        a = stream_anonymize(_source(path), small, algorithm="TP", l=3, shards=3, chunk_rows=100)
        b = stream_anonymize(_source(path), large, algorithm="TP", l=3, shards=3, chunk_rows=100_000)
        assert a.shard_sizes == b.shard_sizes
        assert a.stars == b.stars
        assert sorted(_published_rows(small)) == sorted(_published_rows(large))

    def test_output_is_l_diverse_and_complete(self, census_csv, tmp_path):
        path, table = census_csv
        output = str(tmp_path / "streamed.csv")
        report = stream_anonymize(_source(path), output, algorithm="TP+", l=4, shards=2)
        assert report.verified
        rows = _published_rows(output)
        assert len(rows) == len(table)
        assert verify_csv_l_diverse(output, QI, SA, 4)
        # The sensitive column survives as a multiset.
        from collections import Counter

        assert Counter(row[-1] for row in rows) == Counter(
            str(record[SA]) for record in table.decoded_records()
        )

    def test_planner_chooses_shards_when_unset(self, census_csv, tmp_path):
        path, _table = census_csv
        output = str(tmp_path / "auto.csv")
        report = stream_anonymize(_source(path), output, algorithm="TP", l=3)
        # 1200 rows is far below the sharding payoff threshold.
        assert report.shard_sizes == (1_200,)
        assert report.verified

    def test_ineligible_table_raises(self, tmp_path):
        path = tmp_path / "skewed.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["Q", "S"])
            writer.writerows([["a", "flu"]] * 9 + [["b", "cold"]])
        with pytest.raises(IneligibleTableError):
            stream_anonymize(
                CsvSource(str(path), ("Q",), "S"), str(tmp_path / "out.csv"), l=5
            )

    def test_invalid_chunk_rows_raises(self, census_csv, tmp_path):
        path, _table = census_csv
        with pytest.raises(ValueError, match="chunk_rows"):
            stream_anonymize(_source(path), str(tmp_path / "o.csv"), l=2, chunk_rows=0)


class TestVerifyCsv:
    def test_rejects_a_non_diverse_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([*QI, SA])
            writer.writerows([["*", "*", "*", "flu"]] * 3 + [["*", "*", "*", "cold"]])
        assert not verify_csv_l_diverse(path, QI, SA, 2)
        assert verify_csv_l_diverse(path, QI, SA, 1)

    def test_rejects_an_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("A,B,C,S\n")
        assert not verify_csv_l_diverse(path, ("A", "B", "C"), "S", 2)
