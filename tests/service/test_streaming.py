"""Tests for the bounded-memory CSV-to-CSV streaming pipeline."""

from __future__ import annotations

import csv

import pytest

from repro.dataset.synthetic import CensusConfig, make_sal
from repro.engine import CsvSource, Engine, ResultCache, RunPlan
from repro.errors import IneligibleTableError
from repro.privacy.spec import (
    EntropyLDiversity,
    FrequencyLDiversity,
    RecursiveCLDiversity,
    TCloseness,
)
from repro.service.streaming import (
    stream_anonymize,
    verify_csv_l_diverse,
    verify_csv_satisfies,
)

QI = ("Age", "Gender", "Race")
SA = "Income"


@pytest.fixture(scope="module")
def census_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream") / "census.csv"
    table = make_sal(1_200, seed=7, config=CensusConfig.scaled(0.25)).project(QI)
    table.to_csv(str(path))
    return str(path), table


def _source(path: str) -> CsvSource:
    return CsvSource(path, QI, SA)


def _published_rows(path: str) -> list[tuple[str, ...]]:
    with open(path, newline="") as handle:
        return [tuple(row[name] for name in (*QI, SA)) for row in csv.DictReader(handle)]


class TestStreamAnonymize:
    def test_matches_in_memory_sharded_run(self, census_csv, tmp_path):
        """Streaming and the in-memory engine build identical QI-prefix shards,
        so their published tables agree as multisets of rendered rows."""
        path, _table = census_csv
        output = str(tmp_path / "streamed.csv")
        report = stream_anonymize(
            _source(path), output, algorithm="TP", l=3, shards=3, chunk_rows=250
        )
        in_memory = Engine(cache=ResultCache()).run(
            RunPlan(source=_source(path), algorithm="TP", l=3, shards=3)
        )
        assert report.n == in_memory.n
        assert report.shard_sizes == in_memory.shard_sizes
        assert report.stars == in_memory.generalized.star_count()
        assert report.suppressed_tuples == in_memory.generalized.suppressed_tuple_count()
        from repro.engine.sinks import render_cell_value

        expected = sorted(
            tuple(str(render_cell_value(record[name])) for name in (*QI, SA))
            for record in in_memory.generalized.decoded_records()
        )
        assert sorted(_published_rows(output)) == expected

    def test_chunk_size_does_not_change_the_result(self, census_csv, tmp_path):
        path, _table = census_csv
        small = str(tmp_path / "small-chunks.csv")
        large = str(tmp_path / "large-chunks.csv")
        a = stream_anonymize(_source(path), small, algorithm="TP", l=3, shards=3, chunk_rows=100)
        b = stream_anonymize(_source(path), large, algorithm="TP", l=3, shards=3, chunk_rows=100_000)
        assert a.shard_sizes == b.shard_sizes
        assert a.stars == b.stars
        assert sorted(_published_rows(small)) == sorted(_published_rows(large))

    def test_output_is_l_diverse_and_complete(self, census_csv, tmp_path):
        path, table = census_csv
        output = str(tmp_path / "streamed.csv")
        report = stream_anonymize(_source(path), output, algorithm="TP+", l=4, shards=2)
        assert report.verified
        rows = _published_rows(output)
        assert len(rows) == len(table)
        assert verify_csv_l_diverse(output, QI, SA, 4)
        # The sensitive column survives as a multiset.
        from collections import Counter

        assert Counter(row[-1] for row in rows) == Counter(
            str(record[SA]) for record in table.decoded_records()
        )

    def test_planner_chooses_shards_when_unset(self, census_csv, tmp_path):
        path, _table = census_csv
        output = str(tmp_path / "auto.csv")
        report = stream_anonymize(_source(path), output, algorithm="TP", l=3)
        # 1200 rows is far below the sharding payoff threshold.
        assert report.shard_sizes == (1_200,)
        assert report.verified

    def test_ineligible_table_raises(self, tmp_path):
        path = tmp_path / "skewed.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["Q", "S"])
            writer.writerows([["a", "flu"]] * 9 + [["b", "cold"]])
        with pytest.raises(IneligibleTableError):
            stream_anonymize(
                CsvSource(str(path), ("Q",), "S"), str(tmp_path / "out.csv"), l=5
            )

    def test_invalid_chunk_rows_raises(self, census_csv, tmp_path):
        path, _table = census_csv
        with pytest.raises(ValueError, match="chunk_rows"):
            stream_anonymize(_source(path), str(tmp_path / "o.csv"), l=2, chunk_rows=0)


class TestVerifyCsv:
    def test_rejects_a_non_diverse_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([*QI, SA])
            writer.writerows([["*", "*", "*", "flu"]] * 3 + [["*", "*", "*", "cold"]])
        assert not verify_csv_l_diverse(path, QI, SA, 2)
        assert verify_csv_l_diverse(path, QI, SA, 1)

    def test_rejects_an_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("A,B,C,S\n")
        assert not verify_csv_l_diverse(path, ("A", "B", "C"), "S", 2)


class TestStreamingPrivacySpecs:
    def test_streamed_entropy_run_verifies_with_the_matching_checker(
        self, census_csv, tmp_path
    ):
        path, _table = census_csv
        output = str(tmp_path / "entropy.csv")
        spec = EntropyLDiversity(2.0)
        report = stream_anonymize(
            _source(path), output, algorithm="TP", privacy=spec,
            shards=2, chunk_rows=300,
        )
        assert report.privacy == spec.token()
        assert verify_csv_satisfies(output, QI, SA, spec)
        # and the spec view agrees with the dict / l-sugar encodings
        assert verify_csv_satisfies(output, QI, SA, {"kind": "entropy-l", "l": 2.0})
        assert verify_csv_l_diverse(output, QI, SA, 2)

    def test_strict_recursive_spec_repairs_per_shard(self, census_csv, tmp_path):
        path, _table = census_csv
        output = str(tmp_path / "recursive.csv")
        spec = RecursiveCLDiversity(0.5, 2)
        report = stream_anonymize(
            _source(path), output, algorithm="TP", privacy=spec,
            shards=2, chunk_rows=300,
        )
        assert report.verified
        assert verify_csv_satisfies(output, QI, SA, spec)
        # every input row survives the repair merges
        assert len(_published_rows(output)) == report.n

    def test_default_path_unchanged_by_explicit_frequency_spec(
        self, census_csv, tmp_path
    ):
        path, _table = census_csv
        sugar = str(tmp_path / "sugar.csv")
        explicit = str(tmp_path / "explicit.csv")
        stream_anonymize(_source(path), sugar, algorithm="TP", l=3, shards=2)
        stream_anonymize(
            _source(path), explicit, algorithm="TP",
            privacy=FrequencyLDiversity(3), shards=2,
        )
        with open(sugar) as a, open(explicit) as b:
            assert a.read() == b.read()

    def test_check_only_spec_rejected(self, census_csv, tmp_path):
        path, _table = census_csv
        with pytest.raises(ValueError, match="check-only"):
            stream_anonymize(
                _source(path), str(tmp_path / "t.csv"), privacy=TCloseness(0.2)
            )

    def test_ineligible_spec_raises(self, census_csv, tmp_path):
        path, _table = census_csv
        with pytest.raises(IneligibleTableError):
            stream_anonymize(
                _source(path), str(tmp_path / "x.csv"),
                privacy=EntropyLDiversity(10_000.0),
            )

    def test_verify_csv_satisfies_t_closeness_audit(self, census_csv, tmp_path):
        path, _table = census_csv
        output = str(tmp_path / "audit.csv")
        stream_anonymize(_source(path), output, algorithm="TP", l=2, shards=1)
        # Distance is in [0, 1]: the loosest threshold always passes, a
        # negative-distance demand never does.
        assert verify_csv_satisfies(output, QI, SA, TCloseness(1.0))
