"""Tests for the job service: submission, ledger, cross-process reuse."""

from __future__ import annotations

import json

import pytest

from repro.engine import RunPlan, TableSource
from repro.errors import IneligibleTableError
from repro.service import JobService, Workspace


def _service(tmp_path) -> JobService:
    return JobService(Workspace(tmp_path / "workspace"))


def _plan(table, **fields) -> RunPlan:
    fields.setdefault("algorithm", "TP")
    fields.setdefault("l", 2)
    return RunPlan(source=TableSource(table, "t"), **fields)


class TestSubmit:
    def test_submit_records_a_done_job(self, hospital, tmp_path):
        service = _service(tmp_path)
        record, report = service.submit(_plan(hospital))
        assert record.status == "done"
        assert record.id == "job-0001"
        assert record.n == len(hospital)
        assert record.stars == report.generalized.star_count()
        assert record.shards == 1 and record.workers == 1
        assert record.backend in ("numpy", "reference")
        assert service.get("job-0001") == record

    def test_submit_exports_through_the_sink(self, hospital, tmp_path):
        import csv

        output = str(tmp_path / "published.csv")
        record, _report = _service(tmp_path).submit(_plan(hospital), output=output)
        assert record.output == output
        with open(output, newline="") as handle:
            assert len(list(csv.DictReader(handle))) == len(hospital)

    def test_second_submission_is_served_from_the_store(self, hospital, tmp_path):
        workspace = Workspace(tmp_path / "workspace")
        first_record, _ = JobService(workspace).submit(_plan(hospital))
        # A brand-new service = fresh process: only the JSONL store persists.
        second_record, second_report = JobService(workspace).submit(_plan(hospital))
        assert not first_record.store_hit
        assert second_record.store_hit
        assert second_report.store_hit
        assert second_record.stars == first_record.stars

    def test_failed_submission_is_recorded_and_reraised(self, hospital, tmp_path):
        service = _service(tmp_path)
        with pytest.raises(IneligibleTableError):
            service.submit(_plan(hospital, l=len(hospital) + 1))
        records = service.list()
        assert len(records) == 1
        assert records[0].status == "failed"
        assert "IneligibleTableError" in records[0].error


class TestLedger:
    def test_list_orders_and_numbers_jobs(self, hospital, tmp_path):
        service = _service(tmp_path)
        service.submit(_plan(hospital, algorithm="TP"))
        service.submit(_plan(hospital, algorithm="Hilbert"))
        records = service.list()
        assert [record.id for record in records] == ["job-0001", "job-0002"]
        assert [record.algorithm for record in records] == ["TP", "Hilbert"]

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(KeyError):
            _service(tmp_path).get("job-9999")

    def test_corrupt_ledger_lines_are_skipped(self, hospital, tmp_path):
        service = _service(tmp_path)
        service.submit(_plan(hospital))
        with open(service.workspace.jobs_path, "a") as handle:
            handle.write("{torn record\n")
            handle.write(json.dumps({"unexpected": "shape"}) + "\n")
        assert [record.id for record in service.list()] == ["job-0001"]

    def test_summary_row_reports_cache_tier(self, hospital, tmp_path):
        workspace = Workspace(tmp_path / "workspace")
        JobService(workspace).submit(_plan(hospital))
        record, _ = JobService(workspace).submit(_plan(hospital))
        assert record.summary_row()[7] == "store"
