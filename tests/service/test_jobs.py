"""Tests for the job service: submission, ledger lifecycle, cross-process reuse."""

from __future__ import annotations

import json

import pytest

from repro.engine import RunPlan, TableSource
from repro.errors import IneligibleTableError
from repro.service import JobLedger, JobService, JobStateError, Workspace


def _service(tmp_path) -> JobService:
    return JobService(Workspace(tmp_path / "workspace"))


def _plan(table, **fields) -> RunPlan:
    fields.setdefault("algorithm", "TP")
    fields.setdefault("l", 2)
    return RunPlan(source=TableSource(table, "t"), **fields)


class TestSubmit:
    def test_submit_records_a_done_job(self, hospital, tmp_path):
        service = _service(tmp_path)
        record, report = service.submit(_plan(hospital))
        assert record.status == "done"
        assert record.id == "job-0001"
        assert record.n == len(hospital)
        assert record.stars == report.generalized.star_count()
        assert record.shards == 1 and record.workers == 1
        assert record.backend in ("numpy", "reference")
        assert service.get("job-0001") == record

    def test_submit_exports_through_the_sink(self, hospital, tmp_path):
        import csv

        output = str(tmp_path / "published.csv")
        record, _report = _service(tmp_path).submit(_plan(hospital), output=output)
        assert record.output == output
        with open(output, newline="") as handle:
            assert len(list(csv.DictReader(handle))) == len(hospital)

    def test_second_submission_is_served_from_the_store(self, hospital, tmp_path):
        workspace = Workspace(tmp_path / "workspace")
        first_record, _ = JobService(workspace).submit(_plan(hospital))
        # A brand-new service = fresh process: only the JSONL store persists.
        second_record, second_report = JobService(workspace).submit(_plan(hospital))
        assert not first_record.store_hit
        assert second_record.store_hit
        assert second_report.store_hit
        assert second_record.stars == first_record.stars

    def test_failed_submission_is_recorded_and_reraised(self, hospital, tmp_path):
        service = _service(tmp_path)
        with pytest.raises(IneligibleTableError):
            service.submit(_plan(hospital, l=len(hospital) + 1))
        records = service.list()
        assert len(records) == 1
        assert records[0].status == "failed"
        assert "IneligibleTableError" in records[0].error


class TestLedger:
    def test_list_orders_and_numbers_jobs(self, hospital, tmp_path):
        service = _service(tmp_path)
        service.submit(_plan(hospital, algorithm="TP"))
        service.submit(_plan(hospital, algorithm="Hilbert"))
        records = service.list()
        assert [record.id for record in records] == ["job-0001", "job-0002"]
        assert [record.algorithm for record in records] == ["TP", "Hilbert"]

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(KeyError):
            _service(tmp_path).get("job-9999")

    def test_corrupt_ledger_lines_are_skipped(self, hospital, tmp_path):
        service = _service(tmp_path)
        service.submit(_plan(hospital))
        with open(service.workspace.jobs_path, "a") as handle:
            handle.write("{torn record\n")
            handle.write(json.dumps({"unexpected": "shape"}) + "\n")
        assert [record.id for record in service.list()] == ["job-0001"]

    def test_summary_row_reports_cache_tier(self, hospital, tmp_path):
        workspace = Workspace(tmp_path / "workspace")
        JobService(workspace).submit(_plan(hospital))
        record, _ = JobService(workspace).submit(_plan(hospital))
        assert record.summary_row()[7] == "store"


class TestLifecycle:
    def _ledger(self, tmp_path) -> JobLedger:
        return JobLedger(tmp_path / "workspace" / "jobs.jsonl")

    def test_submit_persists_the_full_transition_history(self, hospital, tmp_path):
        service = _service(tmp_path)
        record, _ = service.submit(_plan(hospital))
        history = service.ledger.history(record.id)
        assert [entry.status for entry in history] == ["queued", "running", "done"]
        assert history[-1].updated >= history[0].updated
        assert history[0].created == history[-1].created

    def test_failed_submission_history(self, hospital, tmp_path):
        service = _service(tmp_path)
        with pytest.raises(IneligibleTableError):
            service.submit(_plan(hospital, l=len(hospital) + 1))
        (record,) = service.list()
        statuses = [entry.status for entry in service.ledger.history(record.id)]
        assert statuses == ["queued", "running", "failed"]

    def test_cancel_queued_job(self, tmp_path):
        ledger = self._ledger(tmp_path)
        record = ledger.create(label="t", algorithm="TP", l=2)
        cancelled = ledger.cancel(record.id)
        assert cancelled.status == "cancelled"
        assert ledger.get(record.id).status == "cancelled"

    def test_cancel_running_job(self, tmp_path):
        ledger = self._ledger(tmp_path)
        record = ledger.create(label="t", algorithm="TP", l=2)
        ledger.transition(record.id, "running")
        assert ledger.cancel(record.id).status == "cancelled"

    def test_cancel_terminal_job_raises(self, hospital, tmp_path):
        service = _service(tmp_path)
        record, _ = service.submit(_plan(hospital))
        with pytest.raises(JobStateError, match="done"):
            service.cancel(record.id)

    def test_illegal_transitions_raise(self, tmp_path):
        ledger = self._ledger(tmp_path)
        record = ledger.create(label="t", algorithm="TP", l=2)
        with pytest.raises(JobStateError):
            ledger.transition(record.id, "done")  # queued -> done skips running
        ledger.transition(record.id, "running")
        ledger.transition(record.id, "done")
        with pytest.raises(JobStateError):
            ledger.transition(record.id, "running")  # terminal states are final
        with pytest.raises(JobStateError):
            ledger.transition(record.id, "resurrected")

    def test_transition_of_unknown_job_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            self._ledger(tmp_path).transition("job-9999", "running")

    def test_cancel_unknown_job_via_service(self, tmp_path):
        with pytest.raises(KeyError):
            _service(tmp_path).cancel("job-9999")


class TestRetryLifecycle:
    def _ledger(self, tmp_path) -> JobLedger:
        return JobLedger(tmp_path / "jobs.jsonl")

    def test_running_jobs_can_enter_and_leave_retrying(self, tmp_path):
        ledger = self._ledger(tmp_path)
        record = ledger.create(label="t", algorithm="TP", l=2, max_attempts=3)
        ledger.transition(record.id, "running", attempts=1)
        parked = ledger.transition(
            record.id, "retrying", attempts=1, last_error="WorkerCrashError: died"
        )
        assert parked.status == "retrying"
        assert parked.last_error == "WorkerCrashError: died"
        resumed = ledger.transition(record.id, "running", attempts=2)
        assert resumed.attempts == 2
        done = ledger.transition(record.id, "done", attempts=2)
        assert done.attempts == 2
        statuses = [entry.status for entry in ledger.history(record.id)]
        assert statuses == ["queued", "running", "retrying", "running", "done"]

    def test_retrying_is_cancellable_but_not_from_queued(self, tmp_path):
        ledger = self._ledger(tmp_path)
        record = ledger.create(label="t", algorithm="TP", l=2)
        with pytest.raises(JobStateError):
            ledger.transition(record.id, "retrying")  # queued jobs never ran
        ledger.transition(record.id, "running")
        ledger.transition(record.id, "retrying")
        assert ledger.cancel(record.id).status == "cancelled"

    def test_quarantine_lands_as_terminal_failed(self, tmp_path):
        ledger = self._ledger(tmp_path)
        record = ledger.create(label="t", algorithm="TP", l=2, max_attempts=2)
        ledger.transition(record.id, "running", attempts=1)
        ledger.transition(record.id, "retrying", attempts=1, last_error="crash")
        ledger.transition(record.id, "running", attempts=2)
        final = ledger.transition(
            record.id,
            "failed",
            attempts=2,
            quarantined=True,
            error="quarantined after 2 attempts; last error: crash",
        )
        assert final.is_terminal() and final.quarantined
        with pytest.raises(JobStateError):
            ledger.transition(record.id, "retrying")

    def test_legacy_records_read_with_zeroed_retry_fields(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        payload = {
            "id": "job-0001", "created": 1.0, "status": "done", "label": "t",
            "algorithm": "TP", "l": 2,
        }
        with open(path, "w") as handle:
            handle.write(json.dumps(payload) + "\n")
        record = JobLedger(path).get("job-0001")
        assert record.attempts == 0
        assert record.max_attempts == 0
        assert record.last_error == ""
        assert record.quarantined is False
        assert record.spec == {}


class TestCompaction:
    def test_compact_keeps_one_latest_record_per_job(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        first = ledger.create(label="a", algorithm="TP", l=2)
        ledger.transition(first.id, "running")
        ledger.transition(first.id, "done", seconds=1.0)
        second = ledger.create(label="b", algorithm="TP", l=2)
        reclaimed = ledger.compact()
        assert reclaimed == 2  # first's queued + running lines superseded
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert ledger.get(first.id).status == "done"
        assert ledger.get(second.id).status == "queued"
        # ids keep allocating above the compacted survivors
        assert ledger.create(label="c", algorithm="TP", l=2).id == "job-0003"

    def test_compact_reclaims_corrupt_lines(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        ledger.create(label="a", algorithm="TP", l=2)
        with open(path, "a") as handle:
            handle.write("{torn\n")
        assert ledger.compact() == 1
        assert len(path.read_text().strip().splitlines()) == 1

    def test_compact_on_an_already_minimal_ledger_rewrites_nothing(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        ledger.create(label="a", algorithm="TP", l=2)
        before = path.stat().st_mtime_ns
        assert ledger.compact() == 0
        assert path.stat().st_mtime_ns == before

    def test_compact_missing_file_is_a_noop(self, tmp_path):
        assert JobLedger(tmp_path / "jobs.jsonl").compact() == 0

    def test_history_is_truncated_by_compaction(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        record = ledger.create(label="a", algorithm="TP", l=2)
        ledger.transition(record.id, "running")
        ledger.transition(record.id, "done")
        ledger.compact()
        assert [r.status for r in ledger.history(record.id)] == ["done"]


class TestLedgerDurability:
    def test_ids_continue_after_gaps(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        first = ledger.create(label="a", algorithm="TP", l=2)
        second = ledger.create(label="b", algorithm="TP", l=2)
        assert [first.id, second.id] == ["job-0001", "job-0002"]
        # ids are allocated above the max seen, even with transitions appended
        ledger.transition(first.id, "running")
        assert ledger.create(label="c", algorithm="TP", l=2).id == "job-0003"

    def test_malformed_records_are_counted_and_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        record = ledger.create(label="a", algorithm="TP", l=2)
        with open(path, "a") as handle:
            handle.write("{torn\n")  # torn JSON
            handle.write(json.dumps({"id": "job-x", "status": "exploded"}) + "\n")
            handle.write(json.dumps({"status": "done", "created": 0.0}) + "\n")  # no id
            handle.write(json.dumps(["not", "an", "object"]) + "\n")
        assert [entry.id for entry in ledger.list()] == [record.id]
        assert ledger.recovered == 4

    def test_unknown_keys_from_newer_writers_are_dropped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        payload = {
            "id": "job-0001", "created": 1.0, "status": "done", "label": "t",
            "algorithm": "TP", "l": 2, "some_future_field": {"x": 1},
        }
        with open(path, "w") as handle:
            handle.write(json.dumps(payload) + "\n")
        record = ledger.get("job-0001")
        assert record.status == "done"
        assert not hasattr(record, "some_future_field")

    def test_concurrent_creates_allocate_distinct_ids(self, tmp_path):
        """Two processes racing create() must never hand out the same id."""
        import multiprocessing

        path = tmp_path / "jobs.jsonl"
        with multiprocessing.Pool(4) as pool:
            ids = pool.map(_create_one, [str(path)] * 12)
        assert len(set(ids)) == 12

    def test_shared_instance_is_thread_safe(self, tmp_path):
        """Threads sharing one ledger (the server's executor offload) can't
        corrupt the incremental replay: flock only serializes processes, and
        get()/list() never took it at all."""
        import threading

        ledger = JobLedger(tmp_path / "jobs.jsonl")
        ids = [ledger.create(label="t", algorithm="TP", l=2).id for _ in range(8)]
        errors: list[BaseException] = []

        def writer(job_id: str) -> None:
            try:
                ledger.transition(job_id, "running")
                ledger.transition(job_id, "done", seconds=0.1)
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        def reader() -> None:
            try:
                for _ in range(200):
                    ledger.list()
                    for job_id in ids:
                        ledger.get(job_id)
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(job_id,)) for job_id in ids]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert errors == []
        assert {record.status for record in ledger.list()} == {"done"}
        assert len(ledger.list()) == len(ids)


def _create_one(path: str) -> str:
    ledger = JobLedger(path)
    return ledger.create(label="race", algorithm="TP", l=2).id
