"""Tests for the cost-based ExecutionPlanner and its BENCH calibration."""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.engine.registry import AlgorithmInfo, algorithm_registry
from repro.service.planner import (
    ExecutionPlanner,
    PlannerCalibration,
    load_bench_calibration,
    load_scale_rates,
    per_job_worker_budget,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_fig6.json"


def _noop_runner(table, l):  # pragma: no cover - never executed
    raise AssertionError("planner tests must not run algorithms")


@pytest.fixture(scope="module")
def planner() -> ExecutionPlanner:
    """A planner pinned to 8 CPUs so decisions are machine-independent."""
    return ExecutionPlanner(cpu_count=8, bench_path=BENCH_PATH)


@pytest.fixture(scope="module")
def tp() -> AlgorithmInfo:
    return algorithm_registry.get("TP")


class TestCalibration:
    def test_loads_committed_bench(self):
        calibration = load_bench_calibration(BENCH_PATH)
        assert calibration.source == str(BENCH_PATH)
        assert set(calibration.rates) == {"numpy", "reference"}
        for backend in ("numpy", "reference"):
            for algorithm in ("TP", "TP+", "Hilbert"):
                assert calibration.rate(algorithm, backend) > 0

    def test_missing_file_falls_back_to_defaults(self, tmp_path):
        calibration = load_bench_calibration(tmp_path / "absent.json")
        assert calibration.source == "defaults"
        assert calibration.rate("TP", "numpy") > 0

    def test_unknown_algorithm_uses_mean_rate(self):
        calibration = load_bench_calibration(BENCH_PATH)
        benched = [calibration.rate(name, "numpy") for name in ("TP", "TP+", "Hilbert")]
        assert min(benched) <= calibration.rate("TDS", "numpy") <= max(benched)


class TestShardDecisions:
    def test_monotone_in_n(self, planner, tp):
        """More rows never means fewer shards (the satellite requirement)."""
        sizes = [1_000, 10_000, 100_000, 1_000_000, 5_000_000]
        shard_choices = [planner.decide(tp, n=n, d=4, l=4).shards for n in sizes]
        assert shard_choices == sorted(shard_choices)
        assert shard_choices[0] == 1  # tiny tables are never sharded
        assert shard_choices[-1] > 1  # huge tables are

    def test_small_tables_run_unsharded_sequential(self, planner, tp):
        decision = planner.decide(tp, n=2_500, d=4, l=6)
        assert decision.shards == 1
        assert decision.workers == 1

    def test_bench_workload_matches_hand_tuned_best(self, planner, tp):
        """Acceptance: within 10% of the best hand-tuned setting on BENCH_fig6.

        Measured, not self-referential: every hand-tunable sequential shard
        count is actually run and timed at the benchmark's largest
        cardinality, and the planner's chosen configuration must be within
        10% of the fastest measured one.  Process-pool configurations are
        excluded from the measured grid — ~50ms of pool spawn against a
        ~3ms run can never win at this scale, it would only add noise.
        """
        for n in (800, 1_600, 2_500):
            assert (planner.decide(tp, n=n, d=4, l=6).shards) == 1

        from repro.dataset.synthetic import CensusConfig
        from repro.engine import Engine, ResultCache, RunPlan, SyntheticSource

        decision = planner.decide(tp, n=2_500, d=4, l=6)
        source = SyntheticSource(
            "SAL", n=2_500, seed=7, dimension=4, config=CensusConfig.scaled(0.24)
        )
        engine = Engine(cache=ResultCache())
        measured: dict[int, float] = {}
        for shards in (1, 2, 4):
            measured[shards] = min(
                engine.run(
                    RunPlan(
                        source=source, algorithm="TP", l=6,
                        shards=shards, workers=1, use_cache=False,
                    )
                ).timings.anonymize_seconds
                for _repeat in range(3)
            )
        assert measured[decision.shards] <= min(measured.values()) * 1.10

    def test_never_shards_unsupported_algorithms(self, planner):
        info = AlgorithmInfo(name="NoShard", runner=_noop_runner, supports_sharding=False)
        for n in (1_000, 100_000, 10_000_000):
            decision = planner.decide(info, n=n, d=4, l=4)
            assert decision.shards == 1
        assert any("supports_sharding=False" in reason for reason in decision.reasons)

    def test_explicit_shards_on_unsupported_algorithm_raises(self, planner):
        info = AlgorithmInfo(name="NoShard", runner=_noop_runner, supports_sharding=False)
        with pytest.raises(ValueError, match="NoShard"):
            planner.decide(info, n=10_000, d=4, l=4, shards=4)

    def test_caller_overrides_are_honoured(self, planner, tp):
        decision = planner.decide(tp, n=5_000_000, d=4, l=4, shards=2, workers=1)
        assert decision.shards == 2
        assert decision.workers == 1

    def test_workers_never_exceed_cpu_or_shards(self, tp):
        planner = ExecutionPlanner(cpu_count=2, bench_path=BENCH_PATH)
        decision = planner.decide(tp, n=5_000_000, d=4, l=4)
        assert decision.workers <= 2
        assert decision.workers <= decision.shards

    def test_single_cpu_machines_stay_sequential(self, tp):
        planner = ExecutionPlanner(cpu_count=1, bench_path=BENCH_PATH)
        for n in (1_000, 1_000_000, 10_000_000):
            assert planner.decide(tp, n=n, d=4, l=4).workers == 1


class TestDegenerateInputs:
    """The planner must resolve any (n, d, l) the HTTP layer can throw at it."""

    def test_empty_table_runs_unsharded_sequential(self, planner, tp):
        decision = planner.decide(tp, n=0, d=4, l=4)
        assert decision.shards == 1
        assert decision.workers == 1
        assert decision.estimated_seconds >= 0.0

    def test_single_row_table(self, planner, tp):
        decision = planner.decide(tp, n=1, d=4, l=2)
        assert (decision.shards, decision.workers) == (1, 1)

    def test_n_below_l_still_plans(self, planner, tp):
        """Eligibility is the engine's concern; the planner just configures."""
        decision = planner.decide(tp, n=3, d=4, l=10)
        assert decision.shards == 1
        assert decision.estimated_seconds >= 0.0

    def test_single_column_qi(self, planner, tp):
        decision = planner.decide(tp, n=100_000, d=1, l=4)
        assert decision.shards >= 1
        assert decision.backend in ("numpy", "reference")

    def test_degenerate_inputs_are_deterministic(self, planner, tp):
        for n, d, l in ((0, 1, 2), (1, 1, 2), (2, 1, 1000)):
            assert planner.decide(tp, n=n, d=d, l=l) == planner.decide(tp, n=n, d=d, l=l)

    def test_explicit_zero_workers_degrades_to_one(self, planner, tp):
        decision = planner.decide(tp, n=1_000_000, d=4, l=4, shards=4, workers=0)
        assert decision.workers == 1


class TestBackendDecisions:
    def test_auto_picks_the_calibrated_faster_backend(self, planner, tp):
        decision = planner.decide(tp, n=100_000, d=4, l=4, backend="auto")
        # Every committed baseline has NumPy at or below the reference rate.
        assert decision.backend == "numpy"

    def test_none_keeps_the_process_backend(self, planner, tp):
        from repro.backend import use_backend

        with use_backend("reference"):
            assert planner.decide(tp, n=1_000, d=4, l=4).backend == "reference"
        assert planner.decide(tp, n=1_000, d=4, l=4).backend == "numpy"

    def test_explicit_backend_wins(self, planner, tp):
        decision = planner.decide(tp, n=1_000, d=4, l=4, backend="reference")
        assert decision.backend == "reference"


class TestExplain:
    def test_explain_lists_candidates_and_choice(self, planner, tp):
        decision = planner.decide(tp, n=1_000_000, d=4, l=4)
        text = decision.explain()
        assert f"shards={decision.shards}" in text
        assert "candidates" in text
        assert str(BENCH_PATH) in text

    def test_decisions_are_deterministic(self, planner, tp):
        first = planner.decide(tp, n=750_000, d=4, l=4)
        second = planner.decide(tp, n=750_000, d=4, l=4)
        assert first == second


class TestSuiteWorkers:
    def test_tiny_suites_stay_sequential(self):
        planner = ExecutionPlanner(
            calibration=PlannerCalibration(), cpu_count=8
        )
        assert planner.suite_workers(jobs=12, estimated_total_seconds=0.01) == 1

    def test_heavy_suites_fan_out(self):
        planner = ExecutionPlanner(calibration=PlannerCalibration(), cpu_count=8)
        assert planner.suite_workers(jobs=12, estimated_total_seconds=60.0) == 8

    def test_single_cpu_never_fans_out(self):
        planner = ExecutionPlanner(calibration=PlannerCalibration(), cpu_count=1)
        assert planner.suite_workers(jobs=100, estimated_total_seconds=600.0) == 1

    def test_width_bounded_by_jobs(self):
        planner = ExecutionPlanner(calibration=PlannerCalibration(), cpu_count=8)
        assert planner.suite_workers(jobs=3, estimated_total_seconds=60.0) == 3


class TestPerJobWorkerBudget:
    def test_splits_cores_evenly_across_pool_width(self):
        assert per_job_worker_budget(1, cpu_count=8) == 8
        assert per_job_worker_budget(2, cpu_count=8) == 4
        assert per_job_worker_budget(3, cpu_count=8) == 2
        assert per_job_worker_budget(8, cpu_count=8) == 1

    def test_never_drops_below_the_historical_pin(self):
        # A pool wider than the machine keeps the old workers=1 behaviour.
        assert per_job_worker_budget(4, cpu_count=1) == 1
        assert per_job_worker_budget(16, cpu_count=8) == 1

    def test_product_never_oversubscribes(self):
        for cpus in (1, 2, 4, 6, 8, 32):
            for width in range(1, 12):
                assert per_job_worker_budget(width, cpu_count=cpus) * width <= max(
                    cpus, width
                )

    def test_invalid_pool_width_raises(self):
        with pytest.raises(ValueError):
            per_job_worker_budget(0)


class TestScaleRates:
    def _payload(self, points):
        return {
            "config": {"algorithm": "TP+"},
            "points": points,
            "speedup": {"10000000": None},
            "speedup_notes": {"10000000": "reference_skipped"},
        }

    def test_null_seconds_points_are_ignored(self, tmp_path):
        target = tmp_path / "BENCH_scale.json"
        target.write_text(
            json.dumps(
                self._payload(
                    [
                        {
                            "n": 1_000_000,
                            "backend": "numpy",
                            "seconds": {"anonymize": 0.5},
                        },
                        {
                            "n": 10_000_000,
                            "backend": "numpy",
                            "seconds": {"anonymize": None},
                        },
                        {
                            "n": 10_000_000,
                            "backend": "reference",
                            "seconds": {"anonymize": None},
                        },
                    ]
                )
            )
        )
        rates, source = load_scale_rates(target)
        assert source == str(target)
        # The null 10^7 entries must not crash the parse *or* win the
        # largest-n selection: the measured 10^6 point calibrates the rate.
        expected = 0.5 / (1_000_000 * math.log2(1_000_000))
        assert rates["numpy"]["TP+"] == pytest.approx(expected)
        assert "reference" not in rates

    def test_committed_bench_scale_parses_with_null_speedups(self):
        rates, source = load_scale_rates(REPO_ROOT / "BENCH_scale.json")
        assert source.endswith("BENCH_scale.json")
        assert rates["numpy"]["TP+"] > 0
        assert rates["reference"]["TP+"] > 0
