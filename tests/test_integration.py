"""Cross-module integration tests: the full pipeline on census-like data.

These tests run every algorithm end to end on the same synthetic census
projection and check the contracts that hold *across* modules: privacy of the
published tables, consistency of the metrics, the relative quality ordering
the paper reports, and the attack simulator agreeing with the checkers.
"""

from __future__ import annotations

import pytest

from repro.baselines import hilbert, mondrian, tds
from repro.core import hybrid, three_phase
from repro.metrics import gcp, kl_divergence, suppression_ratio
from repro.privacy import adversary_confidence, diversity_report, simulate_linking_attack

_L = 4


@pytest.fixture(scope="module")
def census4(small_census):
    return small_census.project(small_census.schema.qi_names[:4])


@pytest.fixture(scope="module")
def outputs(census4):
    return {
        "TP": three_phase.anonymize(census4, _L).generalized,
        "TP+": hybrid.anonymize(census4, _L).generalized,
        "Hilbert": hilbert.anonymize(census4, _L).generalized,
        "TDS": tds.anonymize(census4, _L).generalized,
        "Mondrian": mondrian.anonymize(census4, _L).generalized,
    }


class TestPrivacyAcrossAlgorithms:
    def test_every_algorithm_publishes_an_l_diverse_table(self, outputs):
        for name, generalized in outputs.items():
            assert generalized.is_l_diverse(_L), f"{name} output is not {_L}-diverse"

    def test_adversary_confidence_bounded(self, outputs):
        for name, generalized in outputs.items():
            assert adversary_confidence(generalized) <= 1 / _L + 1e-9, name

    def test_linking_attack_never_exceeds_the_bound(self, census4, outputs):
        for name, generalized in outputs.items():
            report = simulate_linking_attack(census4, generalized, confidence_threshold=1 / _L)
            assert report.above_threshold_rate == 0.0, name

    def test_sensitive_values_preserved(self, census4, outputs):
        for name, generalized in outputs.items():
            assert generalized.sa_values == census4.sa_values, name

    def test_achieved_l_reported_consistently(self, outputs):
        for name, generalized in outputs.items():
            report = diversity_report(generalized)
            assert report.achieved_l >= _L, name


class TestQualityOrdering:
    def test_tp_plus_never_worse_than_tp_in_stars(self, outputs):
        assert outputs["TP+"].star_count() <= outputs["TP"].star_count()

    def test_suppression_ratio_consistent_with_star_count(self, census4, outputs):
        for generalized in outputs.values():
            expected = generalized.star_count() / (len(census4) * census4.dimension)
            assert suppression_ratio(generalized) == pytest.approx(expected)

    def test_generalization_baselines_have_no_stars(self, outputs):
        assert outputs["TDS"].star_count() == 0
        assert outputs["Mondrian"].star_count() == 0

    def test_kl_divergence_finite_for_all(self, census4, outputs):
        values = {name: kl_divergence(census4, generalized) for name, generalized in outputs.items()}
        for name, value in values.items():
            assert value >= 0.0, name
        # The headline utility result of Section 6.2 at l=4 scale.
        assert values["TP+"] <= values["TDS"] + 1e-9

    def test_gcp_in_unit_interval(self, outputs):
        for name, generalized in outputs.items():
            assert 0.0 <= gcp(generalized) <= 1.0, name


class TestGroupStructure:
    def test_groups_partition_rows(self, census4, outputs):
        for name, generalized in outputs.items():
            rows = sorted(row for group in generalized.groups().values() for row in group)
            assert rows == list(range(len(census4))), name

    def test_group_ids_dense(self, outputs):
        for generalized in outputs.values():
            ids = set(generalized.group_ids)
            assert ids == set(range(len(ids)))
