"""Tests for the opt-in stage profiler (``repro.profiling``).

Covers the three contract points the pipeline relies on: the disabled
default costs nothing and records nothing, ``REPRO_PROFILE=1`` accumulates
nested stage timings that the engine snapshots into
:attr:`~repro.engine.core.RunReport.profile`, and ``REPRO_PROFILE=cprofile``
additionally wraps the guarded block in :mod:`cProfile`.
"""

from __future__ import annotations

import importlib

import pytest

from repro import profiling
from repro.engine import Engine, RunPlan, TableSource
from repro.engine.cache import ResultCache


@pytest.fixture(autouse=True)
def _profiling_off_after():
    """Restore the module's disabled default whatever a test toggles."""
    yield
    profiling.set_enabled(False)
    profiling.reset()


class TestDisabledDefault:
    def test_disabled_records_nothing(self):
        profiling.reset()
        assert not profiling.enabled()
        with profiling.profile_stage("encode"):
            pass
        assert profiling.snapshot() == {}

    def test_disabled_returns_shared_null_context(self):
        first = profiling.profile_stage("encode")
        second = profiling.profile_stage("metrics")
        assert first is second  # no per-call allocation on the hot path

    def test_maybe_cprofile_is_null_when_disabled(self):
        assert profiling.maybe_cprofile("anything") is profiling.profile_stage("x")

    def test_env_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        module = importlib.reload(profiling)
        try:
            assert not module.enabled()
            assert not module.cprofile_enabled()
        finally:
            monkeypatch.setenv("REPRO_PROFILE", "")
            importlib.reload(profiling)

    def test_env_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "0")
        module = importlib.reload(profiling)
        try:
            assert not module.enabled()
        finally:
            monkeypatch.delenv("REPRO_PROFILE")
            importlib.reload(profiling)


class TestEnabledAccumulator:
    def test_stages_accumulate_and_reset(self):
        profiling.set_enabled(True)
        profiling.reset()
        profiling.record("encode", 0.25)
        profiling.record("encode", 0.5)
        profiling.record("metrics", 1.0)
        snap = profiling.snapshot()
        assert snap["encode"] == pytest.approx(0.75)
        assert snap["metrics"] == pytest.approx(1.0)
        profiling.reset()
        assert profiling.snapshot() == {}

    def test_nested_stages_record_independently(self):
        profiling.set_enabled(True)
        profiling.reset()
        with profiling.profile_stage("encode"):
            with profiling.profile_stage("sort"):
                pass
        snap = profiling.snapshot()
        # The nested sub-stage gets its own key; the outer stage's time
        # includes it (wall-clock nesting, not exclusive attribution).
        assert set(snap) == {"encode", "sort"}
        assert snap["encode"] >= snap["sort"] >= 0.0

    def test_snapshot_is_a_copy(self):
        profiling.set_enabled(True)
        profiling.reset()
        profiling.record("load", 1.0)
        snap = profiling.snapshot()
        snap["load"] = 99.0
        assert profiling.snapshot()["load"] == pytest.approx(1.0)

    def test_env_one_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        module = importlib.reload(profiling)
        try:
            assert module.enabled()
            assert not module.cprofile_enabled()
        finally:
            monkeypatch.delenv("REPRO_PROFILE")
            importlib.reload(profiling)


class TestCProfileMode:
    def test_set_enabled_cprofile_mode(self):
        profiling.set_enabled(True, mode="cprofile")
        assert profiling.enabled()
        assert profiling.cprofile_enabled()

    def test_maybe_cprofile_prints_hot_functions(self, capsys):
        profiling.set_enabled(True, mode="cprofile")
        with profiling.maybe_cprofile("unit-test-block", top=5):
            sum(range(1000))
        err = capsys.readouterr().err
        assert "[repro cprofile] unit-test-block" in err
        assert "cumulative" in err

    def test_plain_mode_does_not_wrap(self, capsys):
        profiling.set_enabled(True)
        with profiling.maybe_cprofile("plain-block"):
            pass
        assert "[repro cprofile]" not in capsys.readouterr().err


class TestEngineSnapshot:
    def _report(self, table, backend_name):
        return Engine(cache=ResultCache()).run(
            RunPlan(
                source=TableSource(table),
                algorithm="TP+",
                l=2,
                backend=backend_name,
                use_cache=False,
            )
        )

    def test_profile_is_none_when_disabled(self, hospital):
        report = self._report(hospital, "numpy")
        assert report.profile is None

    @pytest.mark.parametrize("backend_name", ["numpy", "reference"])
    def test_profile_snapshot_has_identical_stage_attribution(
        self, small_census, backend_name
    ):
        from repro.dataset.table import Table

        # A fresh table: the session-scoped fixture may already carry a
        # cached grouping, which would legitimately skip the encode stage.
        cold = Table(
            small_census.schema, small_census.qi_rows, small_census.sa_values
        )
        profiling.set_enabled(True)
        profiling.reset()
        try:
            report = self._report(cold, backend_name)
        finally:
            profiling.set_enabled(False)
        assert report.profile is not None
        # Both backends must attribute the same stage boundaries: the run
        # encoding is "encode" (not folded into state-init), state
        # construction is "state-init", publication is "publish".
        for stage in ("load", "encode", "state-init", "phase1", "publish", "metrics"):
            assert stage in report.profile, stage
        assert report.profile["encode"] > 0.0
