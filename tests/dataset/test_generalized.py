"""Tests for partitions, suppression (Definition 1) and generalized tables."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from hypothesis import settings

from repro.core import kernels
from repro.dataset.generalized import STAR, GeneralizedTable, Partition, cell_contains, cell_size
from tests.conftest import make_random_table
from tests.strategies import tables_with_partitions


class TestCellHelpers:
    def test_cell_size(self):
        assert cell_size(3, domain_size=10) == 1
        assert cell_size(frozenset({1, 2, 3}), domain_size=10) == 3
        assert cell_size(STAR, domain_size=10) == 10

    def test_cell_contains(self):
        assert cell_contains(3, 3, 10)
        assert not cell_contains(3, 4, 10)
        assert cell_contains(frozenset({1, 2}), 2, 10)
        assert not cell_contains(frozenset({1, 2}), 5, 10)
        assert cell_contains(STAR, 9, 10)
        assert not cell_contains(STAR, 10, 10)

    def test_star_is_singleton(self):
        assert STAR is type(STAR)()
        assert repr(STAR) == "*"


class TestPartition:
    def test_valid_partition(self):
        partition = Partition([[0, 2], [1]], 3)
        assert len(partition) == 2
        assert partition.group_sizes() == [2, 1]
        assert partition.group_of() == [0, 1, 0]

    def test_empty_groups_dropped(self):
        partition = Partition([[0], [], [1]], 2)
        assert len(partition) == 2

    def test_missing_row_rejected(self):
        with pytest.raises(ValueError):
            Partition([[0]], 2)

    def test_duplicate_row_rejected(self):
        with pytest.raises(ValueError):
            Partition([[0, 1], [1]], 2)

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError):
            Partition([[0, 5]], 2)

    def test_single_group(self):
        partition = Partition.single_group(4)
        assert len(partition) == 1
        assert partition[0] == [0, 1, 2, 3]

    def test_by_qi(self, hospital):
        partition = Partition.by_qi(hospital)
        assert len(partition) == hospital.distinct_qi_count

    def test_is_l_diverse(self, hospital):
        # The paper's Table 3 partition: {1,2,3,4}, {5..8}, {9,10} (0-based).
        table3 = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        assert table3.is_l_diverse(hospital, 2)
        # The Table 2 partition is 2-anonymous but not 2-diverse (HIV group).
        table2 = Partition([[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]], 10)
        assert not table2.is_l_diverse(hospital, 2)


class TestSuppression:
    def test_paper_table3_star_count(self, hospital):
        """The paper's Table 3 has 8 stars (4 on Age, 4 on Education)."""
        partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        assert generalized.star_count() == 8
        assert generalized.suppressed_tuple_count() == 4
        assert generalized.is_l_diverse(2)

    def test_paper_table2_star_count(self, hospital):
        """The paper's Table 2 has 2 stars (Age of Calvin and Danny)."""
        partition = Partition([[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        assert generalized.star_count() == 2
        assert generalized.suppressed_tuple_count() == 2
        assert generalized.is_k_anonymous(2)
        assert not generalized.is_l_diverse(2)

    def test_zero_star_partition(self, hospital):
        partition = Partition.by_qi(hospital)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        assert generalized.star_count() == 0
        assert generalized.suppressed_tuple_count() == 0

    def test_single_group_stars(self, hospital):
        partition = Partition.single_group(len(hospital))
        generalized = GeneralizedTable.from_partition(hospital, partition)
        # All three QI attributes have more than one value overall.
        assert generalized.star_count() == 3 * len(hospital)

    def test_sensitive_values_retained(self, hospital):
        partition = Partition.single_group(len(hospital))
        generalized = GeneralizedTable.from_partition(hospital, partition)
        assert generalized.sa_values == hospital.sa_values

    def test_partition_size_mismatch(self, hospital):
        with pytest.raises(ValueError):
            GeneralizedTable.from_partition(hospital, Partition.single_group(3))

    def test_decoded_records_render_stars(self, hospital):
        partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        record = generalized.decoded_record(2)  # Calvin
        assert record["Age"] == "*"
        assert record["Education"] == "*"
        assert record["Gender"] == "M"
        assert record["Disease"] == "pneumonia"

    def test_groups_mapping(self, hospital):
        partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        groups = generalized.groups()
        assert sorted(len(rows) for rows in groups.values()) == [2, 4, 4]


class TestGeneralizedTableValidation:
    def test_wrong_cell_dimension_rejected(self, hospital):
        with pytest.raises(ValueError):
            GeneralizedTable(hospital.schema, [(0,)], [0], [0])

    def test_length_mismatch_rejected(self, hospital):
        with pytest.raises(ValueError):
            GeneralizedTable(hospital.schema, [(0, 0, 0)], [0, 1], [0])

    def test_invalid_l_rejected(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition.single_group(len(hospital))
        )
        with pytest.raises(ValueError):
            generalized.is_l_diverse(0)
        with pytest.raises(ValueError):
            generalized.is_k_anonymous(0)

    def test_subdomain_cells_counted_as_generalized_not_stars(self, hospital):
        cells = []
        for row in range(len(hospital)):
            qi = hospital.qi_row(row)
            cells.append((frozenset({0, 1}), qi[1], qi[2]))
        generalized = GeneralizedTable(
            hospital.schema, cells, hospital.sa_values, [0] * len(hospital)
        )
        assert generalized.star_count() == 0
        assert generalized.generalized_cell_count() == len(hospital)


class TestSuppressionProperties:
    @given(
        n=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=40),
        group_count=st.integers(min_value=1, max_value=5),
    )
    def test_definition1_star_consistency(self, n, seed, group_count):
        """Within a group an attribute is starred iff the group disagrees on it."""
        table = make_random_table(n, d=3, seed=seed)
        groups = [[] for _ in range(min(group_count, n))]
        for row in range(n):
            groups[row % len(groups)].append(row)
        partition = Partition(groups, n)
        generalized = GeneralizedTable.from_partition(table, partition)
        for group in partition:
            for position in range(table.dimension):
                values = {table.qi_row(row)[position] for row in group}
                cells = {generalized.cell(row, position) for row in group}
                assert len(cells) == 1
                cell = cells.pop()
                if len(values) == 1:
                    assert cell == values.pop()
                else:
                    assert cell is STAR


class TestColumnarPublishOracle:
    """The lazy columnar ``from_partition`` against the serial oracle."""

    @staticmethod
    def _assert_identical(fast: GeneralizedTable, oracle: GeneralizedTable):
        assert fast.cell_rows == oracle.cell_rows
        assert fast.sa_values == oracle.sa_values
        assert fast.group_ids == oracle.group_ids
        assert fast.star_count() == oracle.star_count()
        assert fast.suppressed_tuple_count() == oracle.suppressed_tuple_count()
        assert fast.star_mask().tolist() == oracle.star_mask().tolist()

    @given(case=tables_with_partitions(max_rows=12))
    @settings(deadline=None)
    def test_bit_identical_to_reference(self, case):
        table, partition = case
        fast = GeneralizedTable.from_partition(table, partition)
        oracle = GeneralizedTable.from_partition_reference(table, partition)
        self._assert_identical(fast, oracle)

    @given(case=tables_with_partitions(max_rows=10))
    @settings(deadline=None, max_examples=25)
    def test_forced_chunked_publish_is_bit_identical(self, case):
        table, partition = case
        saved_threshold = kernels.PARALLEL_THRESHOLD
        saved_chunks = kernels.MIN_SORT_CHUNKS
        kernels.PARALLEL_THRESHOLD = 1
        kernels.MIN_SORT_CHUNKS = 4
        try:
            fast = GeneralizedTable.from_partition(table, partition)
        finally:
            kernels.PARALLEL_THRESHOLD = saved_threshold
            kernels.MIN_SORT_CHUNKS = saved_chunks
        self._assert_identical(
            fast, GeneralizedTable.from_partition_reference(table, partition)
        )

    @given(case=tables_with_partitions(max_rows=10))
    @settings(deadline=None, max_examples=25)
    def test_row_tuples_stay_unmaterialized_until_asked(self, case):
        table, partition = case
        fast = GeneralizedTable.from_partition(table, partition)
        if len(table):
            assert fast._cells_rows is None
            # Counts come off the columnar form without building row tuples.
            fast.star_count()
            fast.suppressed_tuple_count()
            fast.star_mask()
            assert fast._cells_rows is None
        assert len(fast._cells) == len(table)

    @given(case=tables_with_partitions(max_rows=10))
    @settings(deadline=None, max_examples=25)
    def test_columnar_publish_determines_every_cell(self, case):
        table, partition = case
        fast = GeneralizedTable.from_partition(table, partition)
        if not len(table):
            return
        published = fast.columnar_publish()
        assert published is not None
        rep_codes, rep_star, group_of, sa_codes = published
        groups = len(partition.groups)
        assert rep_codes.shape == (groups, table.dimension)
        assert rep_star.shape == (groups, table.dimension)
        assert group_of.shape == (len(table),) and sa_codes.shape == (len(table),)
        for row in range(len(table)):
            group = int(group_of[row])
            for position in range(table.dimension):
                expected = fast.cell(row, position)
                if rep_star[group, position]:
                    assert expected is STAR
                else:
                    assert expected == int(rep_codes[group, position])
            assert fast.sa_value(row) == int(sa_codes[row])

    def test_reference_output_has_no_columnar_form(self, hospital):
        partition = Partition.by_qi(hospital)
        oracle = GeneralizedTable.from_partition_reference(hospital, partition)
        assert oracle.columnar_publish() is None
