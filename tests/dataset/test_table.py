"""Tests for the microdata table substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataset.table import Attribute, DomainError, Schema, Table
from tests.conftest import make_random_table


class TestAttribute:
    def test_encode_decode_round_trip(self):
        attribute = Attribute("Color", ("red", "green", "blue"))
        for value in attribute.values:
            assert attribute.decode(attribute.encode(value)) == value

    def test_size(self):
        assert Attribute("A", (1, 2, 3)).size == 3

    def test_contains(self):
        attribute = Attribute("A", ("x", "y"))
        assert "x" in attribute
        assert "z" not in attribute

    def test_encode_unknown_value_raises(self):
        attribute = Attribute("A", ("x",))
        with pytest.raises(DomainError):
            attribute.encode("unknown")

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Attribute("A", ())

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(ValueError):
            Attribute("A", ("x", "x"))

    def test_from_values_sorts_and_deduplicates(self):
        attribute = Attribute.from_values("A", ["b", "a", "b", "c"])
        assert attribute.values == ("a", "b", "c")

    def test_from_values_mixed_types_fallback(self):
        attribute = Attribute.from_values("A", [1, "a"])
        assert attribute.size == 2


class TestSchema:
    def _schema(self) -> Schema:
        return Schema(
            qi=(Attribute("Age", (1, 2)), Attribute("Sex", ("M", "F"))),
            sensitive=Attribute("Disease", ("flu", "hiv")),
        )

    def test_dimension_and_names(self):
        schema = self._schema()
        assert schema.dimension == 2
        assert schema.qi_names == ("Age", "Sex")

    def test_qi_attribute_lookup(self):
        schema = self._schema()
        assert schema.qi_attribute("Sex").size == 2
        assert schema.qi_position("Sex") == 1

    def test_unknown_attribute_raises(self):
        schema = self._schema()
        with pytest.raises(KeyError):
            schema.qi_attribute("Nope")
        with pytest.raises(KeyError):
            schema.qi_position("Nope")

    def test_project(self):
        schema = self._schema()
        projected = schema.project(["Sex"])
        assert projected.qi_names == ("Sex",)
        assert projected.sensitive.name == "Disease"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema(
                qi=(Attribute("X", (1,)), Attribute("X", (2,))),
                sensitive=Attribute("S", (0,)),
            )

    def test_domain_sizes(self):
        sizes = self._schema().domain_sizes
        assert sizes == {"Age": 2, "Sex": 2, "Disease": 2}


class TestTableConstruction:
    def test_row_and_sa_access(self, hospital):
        assert len(hospital) == 10
        assert hospital.dimension == 3
        record = hospital.decoded_record(0)
        assert record["Disease"] == "HIV"
        assert record["Age"] == "<30"

    def test_mismatched_lengths_rejected(self):
        schema = Schema(qi=(Attribute("A", (0, 1)),), sensitive=Attribute("S", (0, 1)))
        with pytest.raises(ValueError):
            Table(schema, [(0,), (1,)], [0])

    def test_wrong_dimension_rejected(self):
        schema = Schema(qi=(Attribute("A", (0, 1)),), sensitive=Attribute("S", (0, 1)))
        with pytest.raises(ValueError):
            Table(schema, [(0, 1)], [0])

    def test_out_of_range_code_rejected(self):
        schema = Schema(qi=(Attribute("A", (0, 1)),), sensitive=Attribute("S", (0, 1)))
        with pytest.raises(DomainError):
            Table(schema, [(5,)], [0])
        with pytest.raises(DomainError):
            Table(schema, [(0,)], [7])

    def test_from_records_infers_domains(self):
        records = [
            {"a": "x", "b": 1, "s": "u"},
            {"a": "y", "b": 2, "s": "v"},
        ]
        table = Table.from_records(records, ["a", "b"], "s")
        assert table.schema.qi_attribute("a").values == ("x", "y")
        assert table.decoded_record(1) == {"a": "y", "b": 2, "s": "v"}

    def test_csv_round_trip(self, tmp_path, hospital):
        path = tmp_path / "hospital.csv"
        hospital.to_csv(str(path))
        reloaded = Table.from_csv(str(path), hospital.schema.qi_names, "Disease")
        assert len(reloaded) == len(hospital)
        assert reloaded.decoded_records() == hospital.decoded_records()


class TestTableQueries:
    def test_sa_counts(self, hospital):
        counts = hospital.sa_counts()
        disease = hospital.schema.sensitive
        assert counts[disease.encode("pneumonia")] == 4
        assert counts[disease.encode("HIV")] == 2

    def test_distinct_sa_count(self, hospital):
        assert hospital.distinct_sa_count == 4

    def test_eligibility(self, hospital):
        assert hospital.is_l_eligible(2)
        assert not hospital.is_l_eligible(3)
        assert hospital.max_l == 2

    def test_eligibility_invalid_l(self, hospital):
        with pytest.raises(ValueError):
            hospital.is_l_eligible(0)

    def test_empty_table_is_trivially_eligible(self):
        schema = Schema(qi=(Attribute("A", (0,)),), sensitive=Attribute("S", (0,)))
        table = Table(schema, [], [])
        assert table.is_l_eligible(5)
        assert table.max_l == 0

    def test_group_by_qi(self, hospital):
        groups = hospital.group_by_qi()
        assert sum(len(rows) for rows in groups.values()) == len(hospital)
        sizes = sorted(len(rows) for rows in groups.values())
        # Table 1: {Adam,Bob}, {Calvin}, {Danny}, {Eva..Helen}, {Ivy,Jane}
        assert sizes == [1, 1, 2, 2, 4]

    def test_distinct_qi_count(self, hospital):
        assert hospital.distinct_qi_count == 5

    def test_project_keeps_sa(self, hospital):
        projected = hospital.project(("Gender",))
        assert projected.dimension == 1
        assert projected.sa_values == hospital.sa_values
        assert projected.distinct_qi_count == 2

    def test_subset_and_sample(self, random_table):
        subset = random_table.subset([0, 5, 7])
        assert len(subset) == 3
        assert subset.qi_row(1) == random_table.qi_row(5)
        sample = random_table.sample(10, seed=1)
        assert len(sample) == 10

    def test_sample_too_large_rejected(self, random_table):
        with pytest.raises(ValueError):
            random_table.sample(len(random_table) + 1)

    def test_sample_deterministic(self, random_table):
        first = random_table.sample(10, seed=4)
        second = random_table.sample(10, seed=4)
        assert first.qi_rows == second.qi_rows
        assert first.sa_values == second.sa_values


class TestTableProperties:
    @given(
        n=st.integers(min_value=1, max_value=40),
        d=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_group_by_qi_partitions_rows(self, n, d, seed):
        table = make_random_table(n, d=d, seed=seed)
        groups = table.group_by_qi()
        all_rows = sorted(row for rows in groups.values() for row in rows)
        assert all_rows == list(range(n))
        for key, rows in groups.items():
            for row in rows:
                assert table.qi_row(row) == key

    @given(
        n=st.integers(min_value=1, max_value=30),
        l=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_max_l_consistent_with_eligibility(self, n, l, seed):
        table = make_random_table(n, seed=seed)
        assert table.is_l_eligible(l) == (l <= table.max_l) or l < 1
