"""Tests for the SAL-d / OCC-d workload construction."""

from __future__ import annotations

import math

import pytest

from repro.dataset.projections import cardinality_samples, projection_family
from repro.dataset.synthetic import CensusConfig, make_sal


class TestProjectionFamily:
    @pytest.fixture(scope="class")
    def base(self):
        return make_sal(400, seed=0, config=CensusConfig.scaled(0.25))

    def test_family_size_is_binomial(self, base):
        """SAL-d contains C(7, d) tables (Section 6.1)."""
        for d in (1, 2, 3):
            family = projection_family(base, d)
            assert len(family) == math.comb(7, d)

    def test_family_of_full_dimension(self, base):
        family = projection_family(base, 7)
        assert len(family) == 1
        assert family[0].table.dimension == 7

    def test_max_tables_cap(self, base):
        family = projection_family(base, 4, max_tables=5)
        assert len(family) == 5

    def test_projection_dimensions_and_labels(self, base):
        family = projection_family(base, 2, max_tables=3)
        for projected in family:
            assert projected.table.dimension == 2
            assert projected.label == "+".join(projected.qi_names)
            assert len(projected.table) == len(base)

    def test_qi_subsets_are_distinct(self, base):
        family = projection_family(base, 3)
        names = {projected.qi_names for projected in family}
        assert len(names) == len(family)

    def test_invalid_d(self, base):
        with pytest.raises(ValueError):
            projection_family(base, 0)
        with pytest.raises(ValueError):
            projection_family(base, 8)


class TestCardinalitySamples:
    @pytest.fixture(scope="class")
    def base(self):
        return make_sal(600, seed=1, config=CensusConfig.scaled(0.25))

    def test_sizes(self, base):
        samples = cardinality_samples(base, [100, 300, 600])
        assert [len(sample) for sample in samples] == [100, 300, 600]

    def test_schema_preserved(self, base):
        (sample,) = cardinality_samples(base, [50])
        assert sample.schema is base.schema

    def test_too_large_rejected(self, base):
        with pytest.raises(ValueError):
            cardinality_samples(base, [601])

    def test_deterministic(self, base):
        first = cardinality_samples(base, [100, 200], seed=9)
        second = cardinality_samples(base, [100, 200], seed=9)
        for a, b in zip(first, second):
            assert a.qi_rows == b.qi_rows
