"""Tests for the built-in example datasets."""

from __future__ import annotations

import pytest

from repro.dataset.examples import (
    hospital_microdata,
    hospital_patient_names,
    phase_three_example,
    phase_two_example,
    table_from_group_counts,
)


class TestHospitalMicrodata:
    def test_shape(self):
        table = hospital_microdata()
        assert len(table) == 10
        assert table.schema.qi_names == ("Age", "Gender", "Education")
        assert table.schema.sensitive.name == "Disease"

    def test_disease_distribution_matches_paper(self):
        table = hospital_microdata()
        counts = {
            table.schema.sensitive.decode(code): count
            for code, count in table.sa_counts().items()
        }
        assert counts == {"HIV": 2, "pneumonia": 4, "bronchitis": 3, "dyspepsia": 1}

    def test_is_2_eligible_but_not_3(self):
        table = hospital_microdata()
        assert table.max_l == 2

    def test_patient_names(self):
        names = hospital_patient_names()
        assert len(names) == 10
        assert names[0] == "Adam"
        assert names[2] == "Calvin"


class TestTableFromGroupCounts:
    def test_basic_construction(self):
        table = table_from_group_counts([(2, 1), (0, 3)])
        assert len(table) == 6
        assert table.distinct_qi_count == 2
        groups = table.group_by_qi()
        sizes = sorted(len(rows) for rows in groups.values())
        assert sizes == [3, 3]

    def test_counts_are_respected(self):
        table = table_from_group_counts([(1, 2, 0)])
        counts = table.sa_counts()
        assert counts == {0: 1, 1: 2}

    def test_dimension_parameter(self):
        table = table_from_group_counts([(1, 1)], dimension=3)
        assert table.dimension == 3
        assert table.qi_row(0) == (0, 0, 0)

    def test_errors(self):
        with pytest.raises(ValueError):
            table_from_group_counts([])
        with pytest.raises(ValueError):
            table_from_group_counts([(1, 2), (1,)])
        with pytest.raises(ValueError):
            table_from_group_counts([(1,)], dimension=0)
        with pytest.raises(ValueError):
            table_from_group_counts([(-1, 2)])


class TestWorkedExamples:
    def test_phase_two_example_matches_section_5_3(self):
        table = phase_two_example()
        assert len(table) == 10 + 12 + 8
        groups = table.group_by_qi()
        assert len(groups) == 3
        # The three group vectors of the example.
        vectors = set()
        for rows in groups.values():
            counts = [0] * 5
            for row in rows:
                counts[table.sa_value(row)] += 1
            vectors.add(tuple(counts))
        assert vectors == {(3, 1, 1, 2, 3), (0, 2, 2, 4, 4), (4, 4, 0, 0, 0)}

    def test_phase_two_example_is_3_eligible(self):
        assert phase_two_example().is_l_eligible(3)

    def test_phase_three_example_is_4_eligible(self):
        table = phase_three_example()
        assert table.is_l_eligible(4)
        # Two big groups plus 12 singleton groups.
        assert table.distinct_qi_count == 2 + 12
