"""Tests for the synthetic census generator (the SAL / OCC substitute)."""

from __future__ import annotations

import pytest

from repro.dataset.synthetic import (
    CENSUS_DOMAIN_SIZES,
    CENSUS_QI_NAMES,
    CensusConfig,
    make_census,
    make_occ,
    make_sal,
)


class TestDomainSizes:
    def test_table6_domain_sizes(self):
        """Table 6 of the paper: the attribute domain sizes."""
        assert CENSUS_DOMAIN_SIZES == {
            "Age": 79,
            "Gender": 2,
            "Race": 9,
            "Marital Status": 6,
            "Birth Place": 56,
            "Education": 17,
            "Work Class": 9,
            "Income": 50,
            "Occupation": 50,
        }

    def test_sal_schema_matches_table6(self):
        table = make_sal(200, seed=0)
        sizes = table.schema.domain_sizes
        for name in CENSUS_QI_NAMES:
            assert sizes[name] == CENSUS_DOMAIN_SIZES[name]
        assert sizes["Income"] == 50

    def test_occ_uses_occupation(self):
        table = make_occ(100, seed=0)
        assert table.schema.sensitive.name == "Occupation"
        assert table.schema.qi_names == CENSUS_QI_NAMES

    def test_seven_qi_attributes(self):
        assert len(CENSUS_QI_NAMES) == 7
        assert make_sal(50).dimension == 7


class TestGeneration:
    def test_deterministic(self):
        first = make_sal(300, seed=5)
        second = make_sal(300, seed=5)
        assert first.qi_rows == second.qi_rows
        assert first.sa_values == second.sa_values

    def test_different_seeds_differ(self):
        first = make_sal(300, seed=1)
        second = make_sal(300, seed=2)
        assert first.qi_rows != second.qi_rows

    def test_cardinality(self):
        assert len(make_sal(123)) == 123

    @pytest.mark.parametrize("maker", [make_sal, make_occ])
    def test_eligible_for_all_experiment_l_values(self, maker):
        """The paper sweeps l from 2 to 10; the data must support that."""
        table = maker(5000, seed=0)
        assert table.max_l >= 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_census(0)
        with pytest.raises(ValueError):
            make_census(10, sensitive="Nope")

    def test_values_within_domains(self):
        table = make_sal(500, seed=2)
        for position, attribute in enumerate(table.schema.qi):
            codes = {row[position] for row in table.qi_rows}
            assert max(codes) < attribute.size
            assert min(codes) >= 0

    def test_age_education_correlation_present(self):
        """Older respondents should skew to lower education codes (by construction)."""
        table = make_sal(8000, seed=1)
        age_position = table.schema.qi_position("Age")
        education_position = table.schema.qi_position("Education")
        age_size = table.schema.qi_attribute("Age").size
        young = [
            row[education_position]
            for row in table.qi_rows
            if row[age_position] < age_size * 0.25
        ]
        old = [
            row[education_position]
            for row in table.qi_rows
            if row[age_position] >= age_size * 0.55
        ]
        assert sum(young) / len(young) > sum(old) / len(old)


class TestScaledConfig:
    def test_scaled_domains_shrink_qi_only(self):
        config = CensusConfig.scaled(0.3)
        assert config.domain("Age") == round(79 * 0.3)
        assert config.domain("Gender") == 2  # clamped at 2
        assert config.domain("Income") == 50  # SA untouched
        assert config.domain("Occupation") == 50

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            CensusConfig.scaled(0.0)
        with pytest.raises(ValueError):
            CensusConfig.scaled(1.5)

    def test_scaled_generation_respects_domains(self):
        config = CensusConfig.scaled(0.25)
        table = make_sal(400, seed=0, config=config)
        assert table.schema.qi_attribute("Age").size == config.domain("Age")
        assert table.max_l >= 10

    def test_scaling_increases_group_sizes(self):
        """Smaller QI domains → fewer distinct QI vectors for the same n."""
        full = make_sal(2000, seed=0)
        scaled = make_sal(2000, seed=0, config=CensusConfig.scaled(0.2))
        assert scaled.distinct_qi_count < full.distinct_qi_count
