"""Equivalence of the vectorized NumPy data plane and the pure-Python oracles.

Every vectorized hot path — columnar construction, QI-grouping, suppression
(Definition 1), star/NCP/discernibility/KL metrics, Hilbert keys, and the
bulk-built three-phase algorithm state — is validated against its retained
``*_reference`` implementation on random tables, mirroring the
``GroupState`` / ``NaiveGroupState`` ablation pattern.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import current_backend, use_backend, vectorized_enabled
from repro.baselines.hilbert.anonymizer import hilbert_order, hilbert_order_reference
from repro.baselines.hilbert.curve import hilbert_index, hilbert_indices_vectorized
from repro.core import three_phase
from repro.core.state import AlgorithmState
from repro.dataset.generalized import STAR, GeneralizedTable, Partition
from repro.dataset.table import Attribute, DomainError, Schema, Table
from repro.metrics.kl import kl_divergence, kl_divergence_reference
from repro.metrics.loss import discernibility, discernibility_reference, ncp, ncp_reference
from repro.metrics.stars import (
    star_count_by_attribute,
    star_count_by_attribute_reference,
)
from tests.strategies import small_tables, tables_with_partitions


@pytest.fixture(autouse=True)
def _force_numpy_backend():
    """Equivalence tests compare numpy against reference explicitly."""
    with use_backend("numpy"):
        yield


def _single_attribute_schema() -> Schema:
    return Schema(qi=(Attribute("Q", (0, 1)),), sensitive=Attribute("S", (0, 1)))


class TestBackendSwitch:
    def test_default_is_numpy(self):
        if os.environ.get("REPRO_BACKEND", "numpy") != "numpy":
            pytest.skip("REPRO_BACKEND overrides the default")
        assert current_backend() == "numpy"
        assert vectorized_enabled()

    def test_context_manager_restores(self):
        before = current_backend()
        with use_backend("reference"):
            assert not vectorized_enabled()
        with use_backend("numpy"):
            assert vectorized_enabled()
        assert current_backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            with use_backend("fortran"):
                pass  # pragma: no cover


class TestColumnarTable:
    def test_from_arrays_round_trip(self):
        schema = Schema(
            qi=(Attribute("A", (0, 1, 2)), Attribute("B", (0, 1))),
            sensitive=Attribute("S", (0, 1, 2, 3)),
        )
        columns = np.array([[0, 1], [2, 0], [1, 1]], dtype=np.int64)
        sa = np.array([3, 0, 2], dtype=np.int64)
        table = Table.from_arrays(schema, columns, sa)
        reference = Table(schema, [(0, 1), (2, 0), (1, 1)], [3, 0, 2])
        assert table.qi_rows == reference.qi_rows
        assert table.sa_values == reference.sa_values
        assert np.array_equal(table.qi_columns, reference.qi_columns)
        assert np.array_equal(table.sa_array, reference.sa_array)

    def test_from_arrays_validates_bounds(self):
        schema = _single_attribute_schema()
        with pytest.raises(DomainError):
            Table.from_arrays(schema, np.array([[5]]), np.array([0]))
        with pytest.raises(DomainError):
            Table.from_arrays(schema, np.array([[0]]), np.array([-1]))

    def test_from_arrays_validates_shape(self):
        schema = _single_attribute_schema()
        with pytest.raises(ValueError):
            Table.from_arrays(schema, np.array([[0, 0]]), np.array([0]))
        with pytest.raises(ValueError):
            Table.from_arrays(schema, np.array([[0]]), np.array([0, 1]))

    def test_row_tuples_are_python_ints(self):
        schema = _single_attribute_schema()
        table = Table.from_arrays(schema, np.array([[1]]), np.array([0]))
        assert type(table.qi_row(0)[0]) is int
        assert type(table.sa_value(0)) is int

    def test_group_by_qi_is_cached(self):
        table = Table(_single_attribute_schema(), [(0,), (1,), (0,)], [0, 1, 1])
        assert table.group_by_qi() is table.group_by_qi()

    def test_pickle_round_trip(self):
        import pickle

        table = Table(_single_attribute_schema(), [(0,), (1,), (0,)], [0, 1, 1])
        clone = pickle.loads(pickle.dumps(table))
        assert clone.qi_rows == table.qi_rows
        assert clone.sa_values == table.sa_values
        assert clone.schema.qi_names == table.schema.qi_names

    @given(table=small_tables(max_rows=12, max_dimension=4))
    def test_group_by_qi_matches_reference(self, table):
        vectorized = table.group_by_qi()
        reference = table.group_by_qi_reference()
        assert vectorized == reference  # same keys AND same ascending row lists

    def test_group_by_qi_empty_table(self):
        table = Table(_single_attribute_schema(), [], [])
        assert table.group_by_qi() == {}
        assert table.distinct_qi_count == 0

    @given(table=small_tables(max_rows=10, max_dimension=1))
    def test_group_by_qi_matches_reference_d1(self, table):
        assert table.group_by_qi() == table.group_by_qi_reference()


class TestGeneralizationEquivalence:
    @given(data=tables_with_partitions(max_rows=10, max_dimension=3))
    def test_from_partition_matches_reference(self, data):
        table, partition = data
        vectorized = GeneralizedTable.from_partition(table, partition)
        reference = GeneralizedTable.from_partition_reference(table, partition)
        assert vectorized.cell_rows == reference.cell_rows
        assert vectorized.group_ids == reference.group_ids
        assert vectorized.sa_values == reference.sa_values
        assert vectorized.star_count() == reference.star_count_reference()
        assert (
            vectorized.suppressed_tuple_count()
            == reference.suppressed_tuple_count_reference()
        )

    @given(data=tables_with_partitions(max_rows=10, max_dimension=3))
    def test_star_metrics_match_reference(self, data):
        table, partition = data
        generalized = GeneralizedTable.from_partition(table, partition)
        assert star_count_by_attribute(generalized) == star_count_by_attribute_reference(
            generalized
        )
        assert discernibility(generalized) == discernibility_reference(generalized)
        assert math.isclose(
            ncp(generalized), ncp_reference(generalized), rel_tol=1e-9, abs_tol=1e-12
        )

    @given(data=tables_with_partitions(max_rows=9, max_dimension=2, max_sensitive=3))
    @settings(deadline=None)
    def test_kl_matches_reference(self, data):
        table, partition = data
        generalized = GeneralizedTable.from_partition(table, partition)
        fast = kl_divergence(table, generalized)
        slow = kl_divergence_reference(table, generalized)
        assert math.isclose(fast, slow, rel_tol=1e-9, abs_tol=1e-9)

    def test_single_group_partition(self, hospital):
        partition = Partition.single_group(len(hospital))
        vectorized = GeneralizedTable.from_partition(hospital, partition)
        reference = GeneralizedTable.from_partition_reference(hospital, partition)
        assert vectorized.cell_rows == reference.cell_rows
        assert vectorized.star_count() == reference.star_count_reference()

    def test_zero_star_partition_by_qi(self, hospital):
        """Empty residue / untouched groups: no stars on either path."""
        partition = Partition.by_qi(hospital)
        vectorized = GeneralizedTable.from_partition(hospital, partition)
        assert vectorized.star_count() == 0
        assert vectorized.suppressed_tuple_count() == 0
        reference = GeneralizedTable.from_partition_reference(hospital, partition)
        assert vectorized.cell_rows == reference.cell_rows

    def test_groups_cached(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition.single_group(len(hospital))
        )
        assert generalized.groups() is generalized.groups()

    def test_star_mask_matches_cells(self, hospital):
        partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        mask = generalized.star_mask()
        for row in range(len(generalized)):
            for position in range(generalized.dimension):
                assert mask[row, position] == (
                    generalized.cell(row, position) is STAR
                )


class TestTrustedPartitionGuards:
    def test_hybrid_filters_empty_refiner_groups(self, hospital):
        from repro.baselines.hilbert import hilbert_refiner
        from repro.core import hybrid

        def sloppy_refiner(table, rows, l):
            return hilbert_refiner(table, rows, l) + [[]]

        result = hybrid.anonymize(hospital, 2, refiner=sloppy_refiner)
        assert all(len(group) > 0 for group in result.partition.groups)
        assert result.generalized.is_l_diverse(2)


class TestHilbertEquivalence:
    @given(
        d=st.integers(min_value=1, max_value=5),
        bits=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_vectorized_indices_match_scalar(self, d, bits, data):
        n = data.draw(st.integers(min_value=0, max_value=20))
        points = data.draw(
            st.lists(
                st.tuples(*[st.integers(min_value=0, max_value=(1 << bits) - 1)] * d),
                min_size=n,
                max_size=n,
            )
        )
        array = np.array(points, dtype=np.int64).reshape(n, d)
        vectorized = hilbert_indices_vectorized(array, bits)
        assert vectorized.tolist() == [hilbert_index(point, bits) for point in points]

    @given(table=small_tables(max_rows=12, max_dimension=4))
    def test_order_matches_reference(self, table):
        assert hilbert_order(table) == hilbert_order_reference(table)

    @given(table=small_tables(max_rows=12, max_dimension=3))
    def test_order_on_subset_matches_reference(self, table):
        rows = list(range(0, len(table), 2))
        assert hilbert_order(table, rows) == hilbert_order_reference(table, rows)


class TestAlgorithmStateEquivalence:
    @given(table=small_tables(max_rows=12, max_dimension=3))
    def test_bulk_init_matches_reference_init(self, table):
        if not table.is_l_eligible(2):
            return
        fast = AlgorithmState(table, 2)
        with use_backend("reference"):
            slow = AlgorithmState(table, 2)
        assert fast.group_count == slow.group_count
        for group_id in range(fast.group_count):
            assert fast.group_qi_vector(group_id) == slow.group_qi_vector(group_id)
            assert fast.group(group_id).counts() == slow.group(group_id).counts()
            assert sorted(fast.group(group_id).rows()) == sorted(slow.group(group_id).rows())
            assert fast.group(group_id).pillars() == slow.group(group_id).pillars()
            assert fast.group(group_id).height == slow.group(group_id).height

    @given(table=small_tables(max_rows=12, max_dimension=3), l=st.integers(2, 4))
    @settings(deadline=None)
    def test_three_phase_identical_across_backends(self, table, l):
        if not table.is_l_eligible(l):
            return
        fast = three_phase.anonymize(table, l)
        with use_backend("reference"):
            slow = three_phase.anonymize(table, l)
        assert fast.generalized.cell_rows == slow.generalized.cell_rows
        assert fast.residue_rows == slow.residue_rows
        assert fast.stats == slow.stats
        assert fast.star_count == slow.star_count
