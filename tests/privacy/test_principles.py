"""Tests for the additional anonymization principles (extension module)."""

from __future__ import annotations

import pytest

from repro.core import three_phase
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.table import Table
from repro.privacy.principles import (
    max_t_closeness_distance,
    satisfies_alpha_k_anonymity,
    satisfies_entropy_l_diversity,
    satisfies_recursive_cl_diversity,
    satisfies_t_closeness,
)


def _table2(hospital):
    return GeneralizedTable.from_partition(
        hospital, Partition([[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]], 10)
    )


def _table3(hospital):
    return GeneralizedTable.from_partition(
        hospital, Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
    )


class TestEntropyLDiversity:
    def test_homogeneous_group_fails(self, hospital):
        assert not satisfies_entropy_l_diversity(_table2(hospital), 2)

    def test_balanced_groups_pass(self, hospital):
        # Every group of Table 3 has a uniform two-value SA distribution.
        assert satisfies_entropy_l_diversity(_table3(hospital), 2)

    def test_trivial_threshold(self, hospital):
        assert satisfies_entropy_l_diversity(_table2(hospital), 1)

    def test_invalid_l(self, hospital):
        with pytest.raises(ValueError):
            satisfies_entropy_l_diversity(_table3(hospital), 0)

    def test_entropy_is_stricter_than_frequency(self, hospital):
        """Entropy l-diversity implies frequency l-diversity, not vice versa."""
        generalized = _table3(hospital)
        if satisfies_entropy_l_diversity(generalized, 2):
            assert generalized.is_l_diverse(2)


class TestRecursiveCLDiversity:
    def test_table3_satisfies_for_large_c(self, hospital):
        assert satisfies_recursive_cl_diversity(_table3(hospital), c=3.0, l=2)

    def test_homogeneous_group_fails(self, hospital):
        assert not satisfies_recursive_cl_diversity(_table2(hospital), c=3.0, l=2)

    def test_too_few_distinct_values_fails(self, hospital):
        assert not satisfies_recursive_cl_diversity(_table3(hospital), c=100.0, l=3)

    def test_invalid_parameters(self, hospital):
        with pytest.raises(ValueError):
            satisfies_recursive_cl_diversity(_table3(hospital), c=0, l=2)
        with pytest.raises(ValueError):
            satisfies_recursive_cl_diversity(_table3(hospital), c=1.0, l=0)


class TestAlphaKAnonymity:
    def test_table2_is_half_2_anonymous_except_hiv_group(self, hospital):
        # The HIV group has 100% of one value, so alpha = 0.5 fails...
        assert not satisfies_alpha_k_anonymity(_table2(hospital), alpha=0.5, k=2)
        # ...but alpha = 1.0 reduces to plain 2-anonymity, which holds.
        assert satisfies_alpha_k_anonymity(_table2(hospital), alpha=1.0, k=2)

    def test_table3_is_half_2_anonymous(self, hospital):
        assert satisfies_alpha_k_anonymity(_table3(hospital), alpha=0.5, k=2)

    def test_group_size_requirement(self, hospital):
        assert not satisfies_alpha_k_anonymity(_table3(hospital), alpha=0.5, k=3)

    def test_invalid_parameters(self, hospital):
        with pytest.raises(ValueError):
            satisfies_alpha_k_anonymity(_table3(hospital), alpha=0, k=2)
        with pytest.raises(ValueError):
            satisfies_alpha_k_anonymity(_table3(hospital), alpha=0.5, k=0)


class TestTCloseness:
    def test_single_group_has_zero_distance(self, hospital):
        generalized = GeneralizedTable.from_partition(hospital, Partition.single_group(10))
        assert max_t_closeness_distance(generalized) == pytest.approx(0.0)
        assert satisfies_t_closeness(generalized, 0.0)

    def test_table2_distance_is_large(self, hospital):
        # The HIV group concentrates 100% mass on a value with 20% overall share.
        assert max_t_closeness_distance(_table2(hospital)) >= 0.7

    def test_threshold_monotonicity(self, hospital):
        generalized = _table3(hospital)
        distance = max_t_closeness_distance(generalized)
        assert satisfies_t_closeness(generalized, distance)
        assert not satisfies_t_closeness(generalized, distance - 0.05)

    def test_invalid_t(self, hospital):
        with pytest.raises(ValueError):
            satisfies_t_closeness(_table3(hospital), -0.1)

    def test_empty_table(self, hospital):
        empty = GeneralizedTable(hospital.schema, [], [], [])
        assert max_t_closeness_distance(empty) == 0.0


class TestEdgeCases:
    """Degenerate-input behaviour of every checker (pinned, not inferred)."""

    @staticmethod
    def _empty(hospital):
        return GeneralizedTable(hospital.schema, [], [], [])

    def test_empty_table_passes_every_group_wise_checker(self, hospital):
        # No groups -> nothing can violate a per-group condition.
        empty = self._empty(hospital)
        assert satisfies_entropy_l_diversity(empty, 2)
        assert satisfies_recursive_cl_diversity(empty, c=2.0, l=2)
        assert satisfies_alpha_k_anonymity(empty, alpha=0.5, k=2)
        assert satisfies_t_closeness(empty, 0.0)

    def test_single_group_table(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition.single_group(10)
        )
        # One group == the whole table: t-closeness is trivially 0 and the
        # diversity checkers reduce to the table-wide histogram.
        assert satisfies_t_closeness(generalized, 0.0)
        assert satisfies_entropy_l_diversity(generalized, 2)
        assert satisfies_alpha_k_anonymity(generalized, alpha=0.5, k=10)
        assert not satisfies_alpha_k_anonymity(generalized, alpha=0.5, k=11)

    def test_l_equal_one_is_trivially_satisfied(self, hospital):
        # log(1) == 0 entropy threshold and a 1-element recursive tail that
        # always includes r_1 itself (for c > 1).
        assert satisfies_entropy_l_diversity(_table2(hospital), 1)
        assert satisfies_recursive_cl_diversity(_table3(hospital), c=2.0, l=1)

    def test_non_integer_entropy_l(self, hospital):
        generalized = _table3(hospital)
        # Table 3's groups are uniform over 2 values: entropy exactly log 2.
        assert satisfies_entropy_l_diversity(generalized, 1.5)
        assert satisfies_entropy_l_diversity(generalized, 2.0)
        assert not satisfies_entropy_l_diversity(generalized, 2.0001)

    def test_non_positive_c_rejected(self, hospital):
        with pytest.raises(ValueError):
            satisfies_recursive_cl_diversity(_table3(hospital), c=0, l=2)
        with pytest.raises(ValueError):
            satisfies_recursive_cl_diversity(_table3(hospital), c=-1.0, l=2)

    def test_t_closeness_on_a_one_value_sa_column(self, hospital):
        # Degenerate SA: every group's distribution equals the table's, so
        # every threshold (including 0) is satisfied in any partition.
        degenerate = Table(
            hospital.schema,
            hospital.qi_rows,
            [0] * len(hospital),
        )
        generalized = GeneralizedTable.from_partition(
            degenerate, Partition([[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]], 10)
        )
        assert max_t_closeness_distance(generalized) == pytest.approx(0.0)
        assert satisfies_t_closeness(generalized, 0.0)


class TestOnAlgorithmOutput:
    def test_tp_output_auditable(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        result = three_phase.anonymize(projected, 4)
        generalized = result.generalized
        # Frequency 4-diversity holds by construction; the stricter principles
        # are simply measurable (no assertion on their truth value).
        assert generalized.is_l_diverse(4)
        assert isinstance(satisfies_entropy_l_diversity(generalized, 2), bool)
        assert isinstance(satisfies_recursive_cl_diversity(generalized, 2.0, 2), bool)
        assert satisfies_alpha_k_anonymity(generalized, alpha=0.25, k=4)
        assert 0.0 <= max_t_closeness_distance(generalized) <= 1.0
