"""Tests for the first-class privacy model hierarchy (`repro.privacy.spec`)."""

from __future__ import annotations

import pickle
from collections import Counter

import pytest

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.errors import DuplicateRegistrationError, UnknownEntryError, VerificationError
from repro.privacy.principles import (
    satisfies_alpha_k_anonymity,
    satisfies_entropy_l_diversity,
    satisfies_recursive_cl_diversity,
    satisfies_t_closeness,
)
from repro.privacy.spec import (
    AlphaKAnonymity,
    EntropyLDiversity,
    FrequencyLDiversity,
    KAnonymity,
    PrivacySpec,
    RecursiveCLDiversity,
    TCloseness,
    enforce_spec,
    privacy_from_dict,
    privacy_registry,
    resolve_privacy,
)

ALL_SPECS = [
    FrequencyLDiversity(2),
    EntropyLDiversity(2.5),
    RecursiveCLDiversity(2.0, 3),
    AlphaKAnonymity(0.5, 4),
    KAnonymity(3),
    TCloseness(0.3),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda spec: spec.kind)
    def test_dict_round_trip(self, spec):
        assert privacy_from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda spec: spec.kind)
    def test_pickle_round_trip(self, spec):
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda spec: spec.kind)
    def test_token_is_deterministic_and_kind_prefixed(self, spec):
        assert spec.token() == spec.token()
        assert spec.token().startswith(spec.kind + "(")

    def test_numeric_parameters_normalize(self):
        # int-vs-float encodings of the same model must share one token,
        # or cache keys would fragment on JSON number representation.
        assert EntropyLDiversity(3) == EntropyLDiversity(3.0)
        assert EntropyLDiversity(3).token() == EntropyLDiversity(3.0).token()
        assert privacy_from_dict({"kind": "entropy-l", "l": 3}) == EntropyLDiversity(3.0)

    def test_tokens_distinguish_specs_with_equal_parameters(self):
        tokens = {spec.token() for spec in ALL_SPECS}
        assert len(tokens) == len(ALL_SPECS)
        assert FrequencyLDiversity(2).token() != EntropyLDiversity(2).token()


class TestRegistry:
    def test_every_spec_is_registered(self):
        assert set(privacy_registry.names()) == {
            "alpha-k", "entropy-l", "frequency-l", "k-anonymity",
            "recursive-cl", "t-closeness",
        }

    def test_unknown_kind(self):
        with pytest.raises(UnknownEntryError):
            privacy_registry.get("swiss-cheese")
        with pytest.raises(UnknownEntryError):
            privacy_from_dict({"kind": "swiss-cheese"})

    def test_t_closeness_is_check_only(self):
        assert not privacy_registry.get("t-closeness").enforceable
        assert privacy_registry.get("frequency-l").enforceable

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DuplicateRegistrationError):
            privacy_registry.register({"l": {"type": "integer"}})(FrequencyLDiversity)

    def test_params_schema_lists_every_field(self):
        for info in privacy_registry.entries():
            spec_fields = set(info.params_schema)
            assert spec_fields, info.name
            for constraints in info.params_schema.values():
                assert constraints["type"] in ("integer", "number")

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "frequency-l"},  # missing l
            {"kind": "frequency-l", "l": 2, "k": 3},  # extra param
            {"kind": "frequency-l", "l": "2"},  # wrong type
            {"kind": "frequency-l", "l": True},  # bool is not an int
            {"kind": "frequency-l", "l": 0},  # out of range
            {"kind": "entropy-l", "l": 0},
            {"kind": "recursive-cl", "c": 0, "l": 2},
            {"kind": "recursive-cl", "c": 2.0, "l": 0},
            {"kind": "alpha-k", "alpha": 1.5, "k": 2},
            {"kind": "alpha-k", "alpha": 0.5, "k": 0},
            {"kind": "k-anonymity", "k": 0},
            {"kind": "t-closeness", "t": -0.1},
            "not-a-dict",
            {"no": "kind"},
        ],
    )
    def test_invalid_payloads(self, payload):
        with pytest.raises(ValueError):
            privacy_from_dict(payload)


class TestResolvePrivacy:
    def test_none_resolves_the_l_sugar(self):
        assert resolve_privacy(None, 3) == FrequencyLDiversity(3)

    def test_int_sugar(self):
        assert resolve_privacy(4) == FrequencyLDiversity(4)

    def test_spec_passes_through(self):
        spec = EntropyLDiversity(2.0)
        assert resolve_privacy(spec) is spec

    def test_mapping_goes_through_the_registry(self):
        assert resolve_privacy({"kind": "k-anonymity", "k": 5}) == KAnonymity(5)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_privacy(None)
        with pytest.raises(ValueError):
            resolve_privacy(True)
        with pytest.raises(ValueError):
            resolve_privacy("entropy-l")


class TestSemantics:
    def test_group_floors(self):
        assert FrequencyLDiversity(3).group_floor() == 3
        assert EntropyLDiversity(2.5).group_floor() == 3
        assert RecursiveCLDiversity(2.0, 4).group_floor() == 4
        assert AlphaKAnonymity(0.25, 2).group_floor() == 4  # ceil(1/alpha) wins
        assert AlphaKAnonymity(0.5, 7).group_floor() == 7  # k wins
        assert KAnonymity(6).group_floor() == 6
        assert TCloseness(0.5).group_floor() == 1

    def test_anonymize_l_never_below_two(self):
        assert EntropyLDiversity(1.2).anonymize_l() == 2
        assert RecursiveCLDiversity(2.0, 1).anonymize_l() == 2
        assert KAnonymity(1).anonymize_l() == 2
        assert AlphaKAnonymity(1.0, 1).anonymize_l() == 2

    def test_check_only_spec_has_no_anonymize_l(self):
        with pytest.raises(ValueError):
            TCloseness(0.1).anonymize_l()

    def test_frequency_check_matches_eligibility_arithmetic(self):
        spec = FrequencyLDiversity(2)
        assert spec.check(Counter({"a": 2, "b": 2}))
        assert not spec.check(Counter({"a": 3, "b": 1}))
        assert not spec.check(Counter())

    def test_alpha_k_is_implied_by_its_derived_frequency_l(self):
        # The engine relies on this: no repair needed for alpha-k outputs.
        spec = AlphaKAnonymity(0.5, 3)
        l = spec.anonymize_l()
        histogram = Counter({"a": 2, "b": 2, "c": 2})
        assert max(histogram.values()) * l <= sum(histogram.values())
        assert spec.check(histogram)

    def test_t_closeness_requires_the_total_histogram(self):
        spec = TCloseness(0.2)
        with pytest.raises(ValueError):
            spec.check(Counter({"a": 1}))
        total = Counter({"a": 5, "b": 5})
        assert spec.check(Counter({"a": 1, "b": 1}), total)
        assert not spec.check(Counter({"a": 2}), total)

    def test_checks_agree_with_the_principles_oracles(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        )
        assert EntropyLDiversity(2.0).check_generalized(generalized) == (
            satisfies_entropy_l_diversity(generalized, 2.0)
        )
        assert RecursiveCLDiversity(3.0, 2).check_generalized(generalized) == (
            satisfies_recursive_cl_diversity(generalized, 3.0, 2)
        )
        assert AlphaKAnonymity(0.5, 2).check_generalized(generalized) == (
            satisfies_alpha_k_anonymity(generalized, 0.5, 2)
        )
        assert TCloseness(0.4).check_generalized(generalized) == (
            satisfies_t_closeness(generalized, 0.4)
        )
        assert FrequencyLDiversity(2).check_generalized(generalized) == (
            generalized.is_l_diverse(2)
        )

    def test_eligibility_generalizes_l_eligibility(self, hospital):
        counts = hospital.sa_counts()
        n = len(hospital)
        assert FrequencyLDiversity(2).eligible(counts, n) == hospital.is_l_eligible(2)
        assert not FrequencyLDiversity(2).eligible(Counter(), 0)
        # k-anonymity is SA-blind: a single-valued SA column stays eligible.
        assert KAnonymity(3).eligible(Counter({"only": 10}), 10)
        assert not FrequencyLDiversity(2).eligible(Counter({"only": 10}), 10)

    def test_sa_blind_surrogate_table(self, hospital):
        surrogate = KAnonymity(2).prepare_table(hospital)
        assert len(surrogate) == len(hospital)
        assert surrogate.distinct_sa_count == len(hospital)
        assert surrogate.schema.qi == hospital.schema.qi


class TestEnforceSpec:
    def test_no_op_returns_the_same_object(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        )
        spec = FrequencyLDiversity(2)
        assert spec.check_generalized(generalized)
        repaired, merges = enforce_spec(hospital, generalized, spec)
        assert repaired is generalized
        assert merges == 0

    def test_repairs_an_entropy_violation_by_merging(self, hospital):
        # Table 2's [4..7] group is SA-homogeneous: entropy 0 < log 2.
        generalized = GeneralizedTable.from_partition(
            hospital, Partition([[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]], 10)
        )
        spec = EntropyLDiversity(2.0)
        assert not spec.check_generalized(generalized)
        repaired, merges = enforce_spec(hospital, generalized, spec)
        assert merges >= 1
        assert spec.check_generalized(repaired)
        assert satisfies_entropy_l_diversity(repaired, 2.0)
        # The repair is a coarsening: rows and SA multiset are preserved.
        assert len(repaired) == len(generalized)
        assert sorted(repaired.sa_values) == sorted(generalized.sa_values)
        assert len(repaired.groups()) < len(generalized.groups())

    def test_repairs_a_group_size_violation(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition([[0], [1], [2, 3], [4, 5, 6, 7], [8, 9]], 10)
        )
        spec = KAnonymity(2)
        repaired, merges = enforce_spec(hospital, generalized, spec)
        assert merges >= 1
        assert repaired.is_k_anonymous(2)

    def test_unrepairable_table_raises(self, hospital):
        # Even one merged group cannot reach entropy log(100).
        generalized = GeneralizedTable.from_partition(
            hospital, Partition([list(range(10))], 10)
        )
        with pytest.raises(VerificationError):
            enforce_spec(hospital, generalized, EntropyLDiversity(100.0))

    def test_empty_table_is_a_no_op(self, hospital):
        empty = hospital.subset([])
        generalized = GeneralizedTable.from_partition(empty, Partition([], 0))
        repaired, merges = enforce_spec(empty, generalized, FrequencyLDiversity(2))
        assert repaired is generalized and merges == 0


class TestSpecIsFrozen:
    def test_specs_are_immutable(self):
        spec = FrequencyLDiversity(2)
        with pytest.raises(Exception):
            spec.l = 3

    def test_base_class_is_abstract_enough(self):
        with pytest.raises(NotImplementedError):
            PrivacySpec().check(Counter({"a": 1}))
