"""Tests for the privacy checkers."""

from __future__ import annotations

import pytest

from repro.core import three_phase
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.privacy.checks import (
    adversary_confidence,
    diversity_report,
    verify_k_anonymity,
    verify_l_diversity,
)


def _table2(hospital):
    """The paper's Table 2 (2-anonymous, not 2-diverse)."""
    return GeneralizedTable.from_partition(
        hospital, Partition([[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]], 10)
    )


def _table3(hospital):
    """The paper's Table 3 (2-diverse)."""
    return GeneralizedTable.from_partition(
        hospital, Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
    )


class TestVerification:
    def test_table2_k_anonymous_not_diverse(self, hospital):
        generalized = _table2(hospital)
        assert verify_k_anonymity(generalized, 2)
        assert not verify_l_diversity(generalized, 2)

    def test_table3_diverse(self, hospital):
        generalized = _table3(hospital)
        assert verify_l_diversity(generalized, 2)
        assert verify_k_anonymity(generalized, 2)
        assert not verify_l_diversity(generalized, 3)

    def test_tp_output_verifies(self, hospital):
        result = three_phase.anonymize(hospital, 2)
        assert verify_l_diversity(result.generalized, 2)


class TestDiversityReport:
    def test_table2_report(self, hospital):
        report = diversity_report(_table2(hospital))
        assert report.group_count == 4
        assert report.min_group_size == 2
        # The homogeneity problem: the HIV group gives 100% confidence.
        assert report.max_confidence == 1.0
        assert report.achieved_l == 1

    def test_table3_report(self, hospital):
        report = diversity_report(_table3(hospital))
        assert report.group_count == 3
        assert report.max_confidence == pytest.approx(0.5)
        assert report.achieved_l == 2

    def test_adversary_confidence_bound(self, hospital):
        assert adversary_confidence(_table3(hospital)) <= 0.5
        assert adversary_confidence(_table2(hospital)) == 1.0

    def test_empty_table_report(self, hospital):
        empty = GeneralizedTable(hospital.schema, [], [], [])
        report = diversity_report(empty)
        assert report.group_count == 0
        assert report.achieved_l == 0
