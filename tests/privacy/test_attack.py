"""Tests for the linking / homogeneity attack simulator (Section 1)."""

from __future__ import annotations

import pytest

from repro.core import hybrid, three_phase
from repro.dataset.generalized import GeneralizedTable, Partition
from repro.privacy.attack import simulate_linking_attack


def _publish(hospital, groups):
    return GeneralizedTable.from_partition(hospital, Partition(groups, len(hospital)))


class TestHomogeneityAttack:
    def test_table2_leaks_adam_and_bob(self, hospital):
        """Section 1: Table 2 is 2-anonymous yet reveals that Adam/Bob have HIV."""
        table2 = _publish(hospital, [[0, 1], [2, 3], [4, 5, 6, 7], [8, 9]])
        report = simulate_linking_attack(hospital, table2, confidence_threshold=0.5)
        assert report.max_confidence == 1.0
        assert report.above_threshold_rate >= 2 / 10

    def test_table3_bounds_confidence_by_half(self, hospital):
        """A 2-diverse publication caps the adversary's confidence at 50%."""
        table3 = _publish(hospital, [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]])
        report = simulate_linking_attack(hospital, table3, confidence_threshold=0.5)
        assert report.max_confidence <= 0.5 + 1e-9
        assert report.above_threshold_rate == 0.0

    def test_unsuppressed_table_fully_leaks(self, hospital):
        original = _publish(hospital, list(hospital.group_by_qi().values()))
        report = simulate_linking_attack(hospital, original)
        # Every individual whose QI-group is SA-homogeneous is fully exposed;
        # for Table 1 that includes Adam, Bob, Calvin and Danny.
        assert report.max_confidence == 1.0
        assert report.correct_inference_rate >= 0.4

    def test_tp_output_respects_l(self, hospital):
        result = three_phase.anonymize(hospital, 2)
        report = simulate_linking_attack(hospital, result.generalized, confidence_threshold=0.5)
        assert report.above_threshold_rate == 0.0

    def test_hybrid_output_respects_l_on_census(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        l = 4
        result = hybrid.anonymize(projected, l)
        report = simulate_linking_attack(projected, result.generalized, confidence_threshold=1 / l)
        assert report.above_threshold_rate == 0.0
        assert report.individuals == len(projected)

    def test_length_mismatch_rejected(self, hospital):
        table3 = _publish(hospital, [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]])
        with pytest.raises(ValueError):
            simulate_linking_attack(hospital.subset([0, 1]), table3)

    def test_mean_confidence_bounded_by_max(self, hospital):
        table3 = _publish(hospital, [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]])
        report = simulate_linking_attack(hospital, table3)
        assert report.mean_confidence <= report.max_confidence + 1e-12
