"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.dataset.generalized import Partition
from repro.dataset.table import Attribute, Schema, Table


@st.composite
def sa_histograms(draw, max_values: int = 6, max_count: int = 8):
    """A histogram ``{sensitive value: count}`` with at least one tuple."""
    size = draw(st.integers(min_value=1, max_value=max_values))
    counts = draw(
        st.lists(st.integers(min_value=0, max_value=max_count), min_size=size, max_size=size)
    )
    histogram = {value: count for value, count in enumerate(counts) if count > 0}
    if not histogram:
        histogram = {0: 1}
    return histogram


@st.composite
def small_tables(
    draw,
    max_rows: int = 9,
    max_dimension: int = 3,
    max_qi_domain: int = 3,
    max_sensitive: int = 4,
):
    """A random small table (suitable for comparison against brute force)."""
    n = draw(st.integers(min_value=1, max_value=max_rows))
    d = draw(st.integers(min_value=1, max_value=max_dimension))
    qi_domain = draw(st.integers(min_value=1, max_value=max_qi_domain))
    m = draw(st.integers(min_value=1, max_value=max_sensitive))
    schema = Schema(
        qi=tuple(Attribute(f"Q{i}", tuple(range(qi_domain))) for i in range(d)),
        sensitive=Attribute("S", tuple(range(m))),
    )
    qi_rows = draw(
        st.lists(
            st.tuples(*[st.integers(min_value=0, max_value=qi_domain - 1) for _ in range(d)]),
            min_size=n,
            max_size=n,
        )
    )
    sa_values = draw(
        st.lists(st.integers(min_value=0, max_value=m - 1), min_size=n, max_size=n)
    )
    return Table(schema, qi_rows, sa_values)


@st.composite
def tables_with_partitions(draw, max_rows: int = 9, **kwargs):
    """A random small table together with a random partition of its rows.

    Used to cross-check the vectorized generalization/metric paths against
    their pure-Python ``_reference`` oracles; covers single-group, all-
    singleton and arbitrary mixed partitions.
    """
    table = draw(small_tables(max_rows=max_rows, **kwargs))
    n = len(table)
    order = draw(st.permutations(list(range(n))))
    cut_count = draw(st.integers(min_value=0, max_value=n - 1))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=n - 1),
                min_size=cut_count,
                max_size=cut_count,
                unique=True,
            )
        )
        if n > 1
        else []
    )
    bounds = [0] + cuts + [n]
    groups = [list(order[start:end]) for start, end in zip(bounds[:-1], bounds[1:])]
    return table, Partition(groups, n)


@st.composite
def eligible_tables(draw, l: int = 2, max_rows: int = 9, **kwargs):
    """A small table that is l-eligible (so anonymization is feasible)."""
    table = draw(small_tables(max_rows=max_rows, **kwargs))
    if table.is_l_eligible(l):
        return table
    # Rebalance: replicate the rows cyclically over l distinct sensitive values
    # so that no value exceeds n / l.
    m = table.schema.sensitive.size
    if m < l:
        schema = Schema(
            qi=table.schema.qi,
            sensitive=Attribute("S", tuple(range(l))),
        )
    else:
        schema = table.schema
    sa_values = [index % l for index in range(len(table))]
    return Table(schema, table.qi_rows, sa_values)
