"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main
from repro.dataset.examples import hospital_microdata


@pytest.fixture
def hospital_csv(tmp_path):
    path = tmp_path / "hospital.csv"
    hospital_microdata().to_csv(str(path))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_anonymize_arguments(self):
        arguments = build_parser().parse_args(
            [
                "anonymize",
                "--input", "in.csv",
                "--qi", "Age,Gender",
                "--sa", "Disease",
                "--l", "2",
                "--output", "out.csv",
            ]
        )
        assert arguments.command == "anonymize"
        assert arguments.algorithm == "TP+"
        assert arguments.l == 2

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])


class TestCommands:
    def test_anonymize_writes_csv(self, hospital_csv, tmp_path, capsys):
        output = str(tmp_path / "published.csv")
        code = main(
            [
                "anonymize",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithm", "TP",
                "--output", output,
            ]
        )
        assert code == 0
        with open(output, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        stars = sum(1 for row in rows for value in row.values() if value == "*")
        assert stars == 8
        captured = capsys.readouterr()
        assert "published table written" in captured.out

    def test_evaluate_prints_metrics(self, hospital_csv, capsys):
        code = main(
            [
                "evaluate",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithms", "TP,Hilbert",
                "--kl",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "TP" in output and "Hilbert" in output
        assert "stars" in output

    def test_experiment_phase3(self, capsys):
        code = main(["experiment", "phase3", "--scale", "smoke"])
        assert code == 0
        assert "phase 3" in capsys.readouterr().out

    def test_experiment_figure2_smoke(self, capsys):
        code = main(["experiment", "figure2", "--dataset", "SAL", "--scale", "smoke"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "TP+" in output

    def test_experiment_csv_export(self, tmp_path, capsys):
        path = str(tmp_path / "fig3.csv")
        code = main(
            ["experiment", "figure3", "--dataset", "OCC", "--scale", "smoke", "--csv", path]
        )
        assert code == 0
        with open(path) as handle:
            header = handle.readline().strip().split(",")
        assert header[0] == "d"
        assert "TP+" in header
        assert "series written" in capsys.readouterr().out


class TestListCommands:
    def test_algorithms_lists_registry_entries(self, capsys):
        from repro.engine import algorithm_registry

        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        for name in algorithm_registry.names():
            assert name in output
        assert "approximation" in output
        assert "sharding" in output

    def test_metrics_lists_registry_entries(self, capsys):
        from repro.engine import metric_registry

        assert main(["metrics"]) == 0
        output = capsys.readouterr().out
        for name in metric_registry.names():
            assert name in output
        assert "description" in output

    def test_anonymize_choices_track_registry(self):
        from repro.engine import algorithm_registry

        parser = build_parser()
        action = next(
            action
            for action in parser._subparsers._group_actions[0].choices["anonymize"]._actions
            if action.dest == "algorithm"
        )
        assert tuple(action.choices) == tuple(sorted(algorithm_registry.names()))

    def test_experiment_choices_track_figures(self):
        from repro.experiments import figures

        parser = build_parser()
        action = next(
            action
            for action in parser._subparsers._group_actions[0].choices["experiment"]._actions
            if action.dest == "name"
        )
        assert tuple(action.choices) == tuple(sorted(figures.FIGURES) + ["phase3"])


class TestShardedAnonymize:
    def test_sharded_round_trip_through_csv_adapter(self, tmp_path, capsys):
        from repro.dataset.synthetic import CensusConfig, make_sal
        from repro.privacy import checks
        from repro.dataset.table import Table

        table = make_sal(1200, seed=7, config=CensusConfig.scaled(0.25)).project(
            ("Age", "Gender", "Race")
        )
        source_path = str(tmp_path / "census.csv")
        table.to_csv(source_path)
        output_path = str(tmp_path / "published.csv")
        code = main(
            [
                "anonymize",
                "--input", source_path,
                "--qi", "Age,Gender,Race",
                "--sa", "Income",
                "--l", "3",
                "--algorithm", "TP",
                "--shards", "3",
                "--chunk-rows", "500",
                "--output", output_path,
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "sharded over" in captured
        assert "published table written" in captured
        with open(output_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(table)
        # Non-starred cells must round-trip through the published CSV.
        published_sa = [row["Income"] for row in rows]
        assert published_sa == [str(record["Income"]) for record in table.decoded_records()]
