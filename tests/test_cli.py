"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main
from repro.dataset.examples import hospital_microdata


@pytest.fixture
def hospital_csv(tmp_path):
    path = tmp_path / "hospital.csv"
    hospital_microdata().to_csv(str(path))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_anonymize_arguments(self):
        arguments = build_parser().parse_args(
            [
                "anonymize",
                "--input", "in.csv",
                "--qi", "Age,Gender",
                "--sa", "Disease",
                "--l", "2",
                "--output", "out.csv",
            ]
        )
        assert arguments.command == "anonymize"
        assert arguments.algorithm == "TP+"
        assert arguments.l == 2

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])


class TestCommands:
    def test_anonymize_writes_csv(self, hospital_csv, tmp_path, capsys):
        output = str(tmp_path / "published.csv")
        code = main(
            [
                "anonymize",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithm", "TP",
                "--output", output,
            ]
        )
        assert code == 0
        with open(output, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 10
        stars = sum(1 for row in rows for value in row.values() if value == "*")
        assert stars == 8
        captured = capsys.readouterr()
        assert "published table written" in captured.out

    def test_evaluate_prints_metrics(self, hospital_csv, capsys):
        code = main(
            [
                "evaluate",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithms", "TP,Hilbert",
                "--kl",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "TP" in output and "Hilbert" in output
        assert "stars" in output

    def test_experiment_phase3(self, capsys):
        code = main(["experiment", "phase3", "--scale", "smoke"])
        assert code == 0
        assert "phase 3" in capsys.readouterr().out

    def test_experiment_figure2_smoke(self, capsys):
        code = main(["experiment", "figure2", "--dataset", "SAL", "--scale", "smoke"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "TP+" in output

    def test_experiment_csv_export(self, tmp_path, capsys):
        path = str(tmp_path / "fig3.csv")
        code = main(
            ["experiment", "figure3", "--dataset", "OCC", "--scale", "smoke", "--csv", path]
        )
        assert code == 0
        with open(path) as handle:
            header = handle.readline().strip().split(",")
        assert header[0] == "d"
        assert "TP+" in header
        assert "series written" in capsys.readouterr().out


class TestListCommands:
    def test_algorithms_lists_registry_entries(self, capsys):
        from repro.engine import algorithm_registry

        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        for name in algorithm_registry.names():
            assert name in output
        assert "approximation" in output
        assert "sharding" in output

    def test_metrics_lists_registry_entries(self, capsys):
        from repro.engine import metric_registry

        assert main(["metrics"]) == 0
        output = capsys.readouterr().out
        for name in metric_registry.names():
            assert name in output
        assert "description" in output

    def test_anonymize_choices_track_registry(self):
        from repro.engine import algorithm_registry

        parser = build_parser()
        action = next(
            action
            for action in parser._subparsers._group_actions[0].choices["anonymize"]._actions
            if action.dest == "algorithm"
        )
        assert tuple(action.choices) == tuple(sorted(algorithm_registry.names()))

    def test_experiment_choices_track_figures(self):
        from repro.experiments import figures

        parser = build_parser()
        action = next(
            action
            for action in parser._subparsers._group_actions[0].choices["experiment"]._actions
            if action.dest == "name"
        )
        assert tuple(action.choices) == tuple(sorted(figures.FIGURES) + ["phase3"])


class TestShardedAnonymize:
    def test_sharded_round_trip_through_csv_adapter(self, tmp_path, capsys):
        from repro.dataset.synthetic import CensusConfig, make_sal
        from repro.privacy import checks
        from repro.dataset.table import Table

        table = make_sal(1200, seed=7, config=CensusConfig.scaled(0.25)).project(
            ("Age", "Gender", "Race")
        )
        source_path = str(tmp_path / "census.csv")
        table.to_csv(source_path)
        output_path = str(tmp_path / "published.csv")
        code = main(
            [
                "anonymize",
                "--input", source_path,
                "--qi", "Age,Gender,Race",
                "--sa", "Income",
                "--l", "3",
                "--algorithm", "TP",
                "--shards", "3",
                "--chunk-rows", "500",
                "--output", output_path,
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "sharded over" in captured
        assert "published table written" in captured
        with open(output_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(table)
        # Non-starred cells must round-trip through the published CSV.
        published_sa = [row["Income"] for row in rows]
        assert published_sa == [str(record["Income"]) for record in table.decoded_records()]


class TestOutputSink:
    def test_anonymize_without_output_prints_only(self, hospital_csv, capsys):
        code = main(
            [
                "anonymize",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithm", "TP",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "stars" in captured
        assert "published table written" not in captured

    def test_output_round_trips_through_csv_sink(self, hospital_csv, tmp_path, capsys):
        output = str(tmp_path / "published.csv")
        code = main(
            [
                "anonymize",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithm", "TP",
                "--output", output,
            ]
        )
        assert code == 0
        with open(output, newline="") as handle:
            rows = list(csv.DictReader(handle))
        # The sink's export must match the in-memory published table, cell
        # for cell, including the star rendering.
        from repro.engine import Engine, ResultCache, RunPlan, CsvSource

        report = Engine(cache=ResultCache()).run(
            RunPlan(
                source=CsvSource(hospital_csv, ("Age", "Gender", "Education"), "Disease"),
                algorithm="TP",
                l=2,
            )
        )
        expected = report.generalized.decoded_records()
        assert len(rows) == len(expected)
        for row, record in zip(rows, expected):
            for name, value in record.items():
                rendered = (
                    "{" + "|".join(str(item) for item in value) + "}"
                    if isinstance(value, tuple)
                    else str(value)
                )
                assert row[name] == rendered


class TestRunStoreReuse:
    def test_fresh_invocation_is_served_from_the_store(self, hospital_csv, tmp_path, capsys):
        workspace = str(tmp_path / "workspace")
        arguments = [
            "anonymize",
            "--input", hospital_csv,
            "--qi", "Age,Gender,Education",
            "--sa", "Disease",
            "--l", "2",
            "--algorithm", "TP",
            "--workspace", workspace,
        ]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert "persistent run store" not in first
        # Each main() builds a fresh Engine and ResultCache; only the JSONL
        # store under the workspace persists — exactly the fresh-process case.
        assert main(arguments) == 0
        second = capsys.readouterr().out
        assert "persistent run store" in second

    def test_no_store_disables_reuse(self, hospital_csv, tmp_path, capsys):
        arguments = [
            "anonymize",
            "--input", hospital_csv,
            "--qi", "Age,Gender,Education",
            "--sa", "Disease",
            "--l", "2",
            "--no-store",
        ]
        assert main(arguments) == 0
        capsys.readouterr()
        assert main(arguments) == 0
        assert "persistent run store" not in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_explains_the_decision(self, hospital_csv, capsys):
        code = main(
            [
                "plan",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "workload: n=10 d=3 l=2" in output
        assert "chosen: shards=1 workers=1" in output
        assert "candidates" in output


class TestJobsCommands:
    def _submit(self, hospital_csv, workspace, extra=()):
        return main(
            [
                "jobs", "submit",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithm", "TP",
                "--workspace", workspace,
                *extra,
            ]
        )

    def test_submit_list_show_round_trip(self, hospital_csv, tmp_path, capsys):
        workspace = str(tmp_path / "workspace")
        assert self._submit(hospital_csv, workspace) == 0
        assert "job job-0001: done" in capsys.readouterr().out

        assert main(["jobs", "list", "--workspace", workspace]) == 0
        listing = capsys.readouterr().out
        assert "job-0001" in listing and "done" in listing

        assert main(["jobs", "show", "job-0001", "--workspace", workspace]) == 0
        shown = capsys.readouterr().out
        assert "status: done" in shown
        assert "algorithm: TP" in shown

    def test_second_submission_reports_store_hit(self, hospital_csv, tmp_path, capsys):
        workspace = str(tmp_path / "workspace")
        assert self._submit(hospital_csv, workspace) == 0
        capsys.readouterr()
        assert self._submit(hospital_csv, workspace) == 0
        assert "persistent run store" in capsys.readouterr().out

    def test_show_unknown_job_fails(self, tmp_path, capsys):
        workspace = str(tmp_path / "workspace")
        assert main(["jobs", "show", "job-0042", "--workspace", workspace]) == 1

    def test_empty_list(self, tmp_path, capsys):
        assert main(["jobs", "list", "--workspace", str(tmp_path / "ws")]) == 0
        assert "no jobs recorded" in capsys.readouterr().out


class TestStreamingAnonymize:
    def test_stream_round_trip(self, tmp_path, capsys):
        from repro.dataset.synthetic import CensusConfig, make_sal
        from repro.service import verify_csv_l_diverse

        table = make_sal(1200, seed=7, config=CensusConfig.scaled(0.25)).project(
            ("Age", "Gender", "Race")
        )
        source_path = str(tmp_path / "census.csv")
        table.to_csv(source_path)
        output_path = str(tmp_path / "published.csv")
        code = main(
            [
                "anonymize",
                "--input", source_path,
                "--qi", "Age,Gender,Race",
                "--sa", "Income",
                "--l", "3",
                "--algorithm", "TP",
                "--shards", "3",
                "--chunk-rows", "300",
                "--stream",
                "--output", output_path,
            ]
        )
        assert code == 0
        assert "streamed 1200 rows" in capsys.readouterr().out
        with open(output_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(table)
        assert verify_csv_l_diverse(output_path, ("Age", "Gender", "Race"), "Income", 3)

    def test_stream_requires_output(self, hospital_csv, capsys):
        code = main(
            [
                "anonymize",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--stream",
            ]
        )
        assert code == 2


class TestVersion:
    def test_version_flag_prints_the_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"ldiversity {__version__}"

    def test_version_is_single_sourced_with_setup_py(self):
        from pathlib import Path

        from repro import __version__

        setup_text = Path(__file__).resolve().parents[1].joinpath("setup.py").read_text()
        assert "_version.py" in setup_text  # setup.py reads the same file
        assert f'__version__ = "{__version__}"' in Path(__file__).resolve().parents[
            1
        ].joinpath("src", "repro", "_version.py").read_text()


class TestVerify:
    def test_verify_accepts_an_l_diverse_file(self, hospital_csv, tmp_path, capsys):
        output = str(tmp_path / "published.csv")
        main(
            [
                "anonymize",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--algorithm", "TP",
                "--output", output,
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "verify",
                "--input", output,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_rejects_raw_microdata(self, hospital_csv, capsys):
        # the raw hospital table is not 4-diverse as published
        code = main(
            [
                "verify",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "4",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err


class TestJobsCancel:
    def test_cancel_requires_a_cancellable_job(self, hospital_csv, tmp_path, capsys):
        workspace = str(tmp_path / "workspace")
        assert main(
            [
                "jobs", "submit",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--l", "2",
                "--workspace", workspace,
            ]
        ) == 0
        capsys.readouterr()
        # the synchronous submit already finished: done jobs cannot be cancelled
        assert main(["jobs", "cancel", "job-0001", "--workspace", workspace]) == 1
        assert "done" in capsys.readouterr().err

    def test_cancel_a_stuck_job(self, tmp_path, capsys):
        """A queued/running record (e.g. from a crashed server) can be cancelled."""
        from repro.service import JobLedger, Workspace

        workspace = str(tmp_path / "workspace")
        ledger = JobLedger(Workspace(workspace).jobs_path)
        record = ledger.create(label="stuck", algorithm="TP", l=2)
        ledger.transition(record.id, "running")
        assert main(["jobs", "cancel", record.id, "--workspace", workspace]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert ledger.get(record.id).status == "cancelled"

    def test_cancel_unknown_job_fails(self, tmp_path, capsys):
        code = main(["jobs", "cancel", "job-0042", "--workspace", str(tmp_path / "ws")])
        assert code == 1


class TestPrivacyFlags:
    def _anonymize(self, hospital_csv, tmp_path, *extra):
        output = str(tmp_path / "published.csv")
        code = main(
            [
                "anonymize",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--output", output,
                *extra,
            ]
        )
        return code, output

    def test_entropy_anonymize_and_verify(self, hospital_csv, tmp_path, capsys):
        code, output = self._anonymize(
            hospital_csv, tmp_path, "--privacy", "entropy-l", "--l", "2"
        )
        assert code == 0
        assert "entropy-l(l=2.0)" in capsys.readouterr().out
        from repro.service import verify_csv_satisfies

        assert verify_csv_satisfies(
            output, ("Age", "Gender", "Education"), "Disease",
            {"kind": "entropy-l", "l": 2.0},
        )
        assert main(
            [
                "verify",
                "--input", output,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--privacy", "entropy-l",
                "--l", "2",
            ]
        ) == 0
        assert "entropy-l" in capsys.readouterr().out

    def test_recursive_cl_flags(self, hospital_csv, tmp_path, capsys):
        code, _output = self._anonymize(
            hospital_csv, tmp_path,
            "--privacy", "recursive-cl", "--c", "2", "--l", "2",
        )
        assert code == 0
        assert "recursive-cl(c=2.0,l=2)" in capsys.readouterr().out

    def test_missing_parameter_is_a_usage_error(self, hospital_csv, tmp_path, capsys):
        code, _output = self._anonymize(
            hospital_csv, tmp_path, "--privacy", "recursive-cl", "--l", "2"
        )
        assert code == 2
        assert "--c" in capsys.readouterr().err

    def test_inapplicable_parameter_is_a_usage_error(self, hospital_csv, tmp_path, capsys):
        code, _output = self._anonymize(
            hospital_csv, tmp_path, "--privacy", "frequency-l", "--l", "2", "--k", "3"
        )
        assert code == 2
        assert "--k" in capsys.readouterr().err

    def test_fractional_l_rejected_for_frequency(self, hospital_csv, tmp_path, capsys):
        code, _output = self._anonymize(hospital_csv, tmp_path, "--l", "2.5")
        assert code == 2
        assert "integer" in capsys.readouterr().err

    def test_verify_t_closeness(self, hospital_csv, tmp_path, capsys):
        code, output = self._anonymize(hospital_csv, tmp_path, "--l", "2")
        assert code == 0
        capsys.readouterr()
        assert main(
            [
                "verify",
                "--input", output,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--privacy", "t-closeness",
                "--t", "1.0",
            ]
        ) == 0
        assert "t-closeness(t=1.0)" in capsys.readouterr().out

    def test_jobs_submit_records_the_spec(self, hospital_csv, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        code = main(
            [
                "jobs", "submit",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--privacy", "k-anonymity", "--k", "2",
                "--workspace", workspace,
            ]
        )
        assert code == 0
        capsys.readouterr()
        from repro.service import JobService, Workspace

        records = JobService(Workspace(workspace)).list()
        assert records[-1].privacy == {"kind": "k-anonymity", "k": 2}

    def test_privacy_listing_command(self, capsys):
        assert main(["privacy"]) == 0
        output = capsys.readouterr().out
        for name in ("frequency-l", "entropy-l", "recursive-cl",
                     "alpha-k", "k-anonymity", "t-closeness"):
            assert name in output
        assert "verify only" in output

    def test_plan_accepts_a_spec(self, hospital_csv, capsys):
        assert main(
            [
                "plan",
                "--input", hospital_csv,
                "--qi", "Age,Gender,Education",
                "--sa", "Disease",
                "--privacy", "alpha-k", "--alpha", "0.5", "--k", "2",
            ]
        ) == 0
        assert "alpha-k(alpha=0.5,k=2)" in capsys.readouterr().out
