"""Tests of the package's public surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_quickstart_flow(self):
        table = repro.datasets.hospital_microdata()
        result = repro.anonymize(table, l=2)
        assert isinstance(result, repro.ThreePhaseResult)
        assert result.generalized.is_l_diverse(2)

    def test_star_sentinel_exported(self):
        assert repr(repro.STAR) == "*"


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.eligibility",
            "repro.core.groups",
            "repro.core.state",
            "repro.core.phase1",
            "repro.core.phase2",
            "repro.core.phase3",
            "repro.core.three_phase",
            "repro.core.hybrid",
            "repro.core.matching",
            "repro.core.exact",
            "repro.core.bounds",
            "repro.core.refiners",
            "repro.core.preprocess",
            "repro.dataset",
            "repro.dataset.table",
            "repro.dataset.generalized",
            "repro.dataset.examples",
            "repro.dataset.synthetic",
            "repro.dataset.projections",
            "repro.baselines",
            "repro.baselines.hilbert",
            "repro.baselines.hilbert.curve",
            "repro.baselines.hilbert.anonymizer",
            "repro.baselines.hierarchy",
            "repro.baselines.tds",
            "repro.baselines.mondrian",
            "repro.metrics",
            "repro.metrics.stars",
            "repro.metrics.kl",
            "repro.metrics.loss",
            "repro.privacy",
            "repro.privacy.checks",
            "repro.privacy.attack",
            "repro.privacy.principles",
            "repro.hardness",
            "repro.hardness.three_dm",
            "repro.hardness.reduction",
            "repro.hardness.verify",
            "repro.hardness.kdm",
            "repro.experiments",
            "repro.experiments.config",
            "repro.experiments.harness",
            "repro.experiments.figures",
            "repro.engine",
            "repro.engine.registry",
            "repro.engine.cache",
            "repro.engine.core",
            "repro.engine.sources",
            "repro.engine.sinks",
            "repro.engine.sharding",
            "repro.service",
            "repro.service.store",
            "repro.service.planner",
            "repro.service.streaming",
            "repro.service.jobs",
            "repro.service.workspace",
            "repro.cli",
            "repro.errors",
        ],
    )
    def test_module_imports_and_has_docstring(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} is missing a module docstring"

    @pytest.mark.parametrize(
        "module",
        ["repro.core", "repro.dataset", "repro.baselines", "repro.metrics",
         "repro.privacy", "repro.hardness", "repro.experiments", "repro.engine",
         "repro.service"],
    )
    def test_subpackage_all_resolves(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module}.{name} missing"
