"""Tests for the 3-dimensional matching machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.three_dm import (
    ThreeDMInstance,
    enumerate_matchings,
    paper_example_instance,
    random_instance,
    solve_3dm,
)


class TestInstanceValidation:
    def test_paper_example_shape(self):
        instance = paper_example_instance()
        assert instance.n == 4
        assert instance.point_count == 6

    def test_rejects_duplicate_points(self):
        with pytest.raises(ValueError):
            ThreeDMInstance(n=2, points=((0, 0, 0), (0, 0, 0)))

    def test_rejects_out_of_range_coordinates(self):
        with pytest.raises(ValueError):
            ThreeDMInstance(n=2, points=((0, 0, 2), (1, 1, 1)))

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError):
            ThreeDMInstance(n=3, points=((0, 0, 0), (1, 1, 1)))

    def test_rejects_non_triples(self):
        with pytest.raises(ValueError):
            ThreeDMInstance(n=1, points=((0, 0),))


class TestMatchingCheck:
    def test_paper_solution(self):
        """{p1, p3, p5, p6} is a matching of the Figure 1a instance."""
        instance = paper_example_instance()
        assert instance.is_matching((0, 2, 4, 5))
        assert not instance.is_matching((0, 1, 2, 3))
        assert not instance.is_matching((0, 2, 4))


class TestSolver:
    def test_solves_paper_example(self):
        instance = paper_example_instance()
        solution = solve_3dm(instance)
        assert solution is not None
        assert instance.is_matching(solution)

    def test_detects_unsolvable_instance(self):
        # Both points collide on the second dimension.
        instance = ThreeDMInstance(n=2, points=((0, 0, 0), (1, 0, 1), (0, 0, 1)))
        assert solve_3dm(instance) is None

    def test_solution_agrees_with_enumeration(self):
        instance = paper_example_instance()
        matchings = enumerate_matchings(instance)
        assert matchings  # yes-instance
        solution = solve_3dm(instance)
        assert tuple(sorted(solution)) in {tuple(sorted(m)) for m in matchings}

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_planted_instances_are_solvable(self, n, extra, seed):
        instance = random_instance(n, extra_points=extra, seed=seed, solvable=True)
        solution = solve_3dm(instance)
        assert solution is not None
        assert instance.is_matching(solution)

    @settings(deadline=None, max_examples=20)
    @given(
        n=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_solver_matches_enumeration_on_random_instances(self, n, seed):
        instance = random_instance(n, extra_points=2, seed=seed, solvable=False)
        solution = solve_3dm(instance)
        matchings = enumerate_matchings(instance)
        assert (solution is not None) == bool(matchings)
