"""Tests for the generalized l-dimensional matching construction (l > 3)."""

from __future__ import annotations

import itertools

import pytest

from repro.core import three_phase
from repro.core.exact import optimal_star_count
from repro.hardness.kdm import (
    KDMInstance,
    matching_to_generalization,
    reduce_kdm_to_l_diversity,
    solve_kdm,
)


def _planted_instance(k: int, n: int, extra: int = 1, seed: int = 0) -> KDMInstance:
    import random

    rng = random.Random(seed)
    points: set[tuple[int, ...]] = set()
    permutations = [list(range(n)) for _ in range(k)]
    for dimension in range(1, k):
        rng.shuffle(permutations[dimension])
    for index in range(n):
        points.add(tuple(permutations[dimension][index] for dimension in range(k)))
    while len(points) < n + extra:
        points.add(tuple(rng.randrange(n) for _ in range(k)))
    return KDMInstance(k=k, n=n, points=tuple(sorted(points)))


class TestInstanceAndSolver:
    def test_validation(self):
        with pytest.raises(ValueError):
            KDMInstance(k=2, n=2, points=((0, 0), (1, 1)))
        with pytest.raises(ValueError):
            KDMInstance(k=3, n=0, points=())
        with pytest.raises(ValueError):
            KDMInstance(k=3, n=2, points=((0, 0, 0), (0, 0, 0)))
        with pytest.raises(ValueError):
            KDMInstance(k=3, n=2, points=((0, 0, 5), (1, 1, 1)))

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_planted_instances_are_solved(self, k):
        instance = _planted_instance(k, n=3, extra=2, seed=k)
        solution = solve_kdm(instance)
        assert solution is not None
        assert instance.is_matching(solution)

    def test_unsolvable_instance(self):
        # Every point uses value 0 on the last dimension.
        points = tuple(
            (first, second, 0, 0)
            for first, second in itertools.product(range(2), repeat=2)
        )
        instance = KDMInstance(k=4, n=2, points=points)
        assert solve_kdm(instance) is None

    def test_is_matching_rejects_wrong_size(self):
        instance = _planted_instance(4, n=2)
        assert not instance.is_matching((0,))


class TestReduction:
    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_gadget_structure(self, k):
        instance = _planted_instance(k, n=3, extra=2, seed=10 + k)
        reduced = reduce_kdm_to_l_diversity(instance)
        table = reduced.table
        assert len(table) == k * 3
        assert table.dimension == instance.point_count
        assert reduced.l == k
        # Every column has exactly k zeros (generalized Property 1).
        for position in range(table.dimension):
            zeros = sum(1 for row in range(len(table)) if table.qi_row(row)[position] == 0)
            assert zeros == k
        # Exactly m distinct sensitive values; dimensions never share values.
        assert table.distinct_sa_count == reduced.m
        by_dimension: dict[int, set[int]] = {}
        for row, (dimension, _value) in enumerate(reduced.row_values):
            by_dimension.setdefault(dimension, set()).add(table.sa_value(row))
        for first, second in itertools.combinations(by_dimension.values(), 2):
            assert not (first & second)
        # The gadget table is k-eligible, so the target problem is feasible.
        assert table.is_l_eligible(k)

    def test_m_bounds(self):
        instance = _planted_instance(4, n=2)
        with pytest.raises(ValueError):
            reduce_kdm_to_l_diversity(instance, m=3)
        with pytest.raises(ValueError):
            reduce_kdm_to_l_diversity(instance, m=9)

    @pytest.mark.parametrize("k", [3, 4])
    def test_matching_yields_threshold_generalization(self, k):
        instance = _planted_instance(k, n=3, extra=2, seed=20 + k)
        reduced = reduce_kdm_to_l_diversity(instance)
        matching = solve_kdm(instance)
        generalized = matching_to_generalization(reduced, matching)
        assert generalized.star_count() == reduced.star_threshold
        assert generalized.is_l_diverse(k)
        assert all(len(rows) == k for rows in generalized.groups().values())

    def test_non_matching_rejected(self):
        instance = _planted_instance(4, n=2, extra=2)
        reduced = reduce_kdm_to_l_diversity(instance)
        with pytest.raises(ValueError):
            matching_to_generalization(reduced, (0, 0))

    def test_exhaustive_optimum_matches_threshold_for_tiny_yes_instance(self):
        # k = 4, n = 2: 8 rows, small enough for brute force.
        instance = _planted_instance(4, n=2, extra=1, seed=3)
        reduced = reduce_kdm_to_l_diversity(instance)
        assert solve_kdm(instance) is not None
        optimum = optimal_star_count(reduced.table, l=4, max_rows=8)
        assert optimum == reduced.star_threshold

    def test_tp_respects_the_lower_bound(self):
        instance = _planted_instance(4, n=3, extra=2, seed=9)
        reduced = reduce_kdm_to_l_diversity(instance)
        result = three_phase.anonymize(reduced.table, 4)
        assert result.generalized.is_l_diverse(4)
        assert result.star_count >= reduced.star_threshold
