"""Tests for the Section-4 reduction, including the exact Figure 1b table."""

from __future__ import annotations

import pytest

from repro.hardness.reduction import reduce_to_l_diversity, sensitive_value_for_row
from repro.hardness.three_dm import ThreeDMInstance, paper_example_instance
from repro.hardness.verify import verify_construction_properties

#: Figure 1b of the paper: the table constructed from the Figure 1a instance
#: with m = 8.  Columns A1..A6, last column is the sensitive attribute B.
_FIGURE_1B = [
    # A1 A2 A3 A4 A5 A6  B
    (0, 0, 1, 1, 1, 1, 1),   # row for value 1 (D1)
    (2, 2, 0, 0, 2, 2, 2),   # 2
    (3, 3, 3, 3, 0, 3, 3),   # 3
    (4, 4, 4, 4, 4, 0, 4),   # 4
    (0, 5, 5, 5, 5, 5, 5),   # a (D2)
    (6, 0, 6, 0, 0, 6, 6),   # b
    (7, 7, 0, 7, 7, 7, 7),   # c
    (7, 7, 7, 7, 7, 0, 7),   # d
    (8, 8, 0, 0, 8, 8, 8),   # alpha (D3)
    (8, 8, 8, 8, 8, 0, 8),   # beta
    (8, 0, 8, 8, 0, 8, 8),   # gamma
    (0, 8, 8, 8, 8, 8, 8),   # delta
]


class TestSensitiveValueRule:
    def test_figure_1b_assignment(self):
        """n = 4, m = 8: SA values 1..6 then 7,7 then 8,8,8,8."""
        expected = [1, 2, 3, 4, 5, 6, 7, 7, 8, 8, 8, 8]
        assert [sensitive_value_for_row(j, 4, 8) for j in range(1, 13)] == expected

    def test_large_m_case(self):
        # m - 1 > 2n: n = 2, m = 6 (3n = 6).
        values = [sensitive_value_for_row(j, 2, 6) for j in range(1, 7)]
        assert values == [1, 2, 3, 4, 5, 6]
        assert len(set(values)) == 6

    def test_small_m_case(self):
        # n >= m - 1: n = 4, m = 3.
        values = [sensitive_value_for_row(j, 4, 3) for j in range(1, 13)]
        assert values == [1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]

    def test_out_of_range_row(self):
        with pytest.raises(ValueError):
            sensitive_value_for_row(0, 4, 8)
        with pytest.raises(ValueError):
            sensitive_value_for_row(13, 4, 8)


class TestFigure1bTable:
    def test_reduction_reproduces_figure_1b_exactly(self):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        table = reduced.table
        assert len(table) == 12
        assert table.dimension == 6
        for row, expected in enumerate(_FIGURE_1B):
            qi = tuple(
                table.schema.qi[i].decode(table.qi_row(row)[i]) for i in range(6)
            )
            sa = table.schema.sensitive.decode(table.sa_value(row))
            assert qi == expected[:6], f"row {row} QI mismatch"
            assert sa == expected[6], f"row {row} SA mismatch"

    def test_star_threshold(self):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        assert reduced.star_threshold == 3 * 4 * (6 - 1) == 60

    def test_construction_properties(self):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        verify_construction_properties(reduced)

    def test_row_values_metadata(self):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        dimensions = [dimension for dimension, _value in reduced.row_values]
        assert dimensions == [0] * 4 + [1] * 4 + [2] * 4


class TestParameterValidation:
    def test_default_m(self):
        reduced = reduce_to_l_diversity(paper_example_instance())
        assert reduced.m == 8

    def test_m_bounds(self):
        instance = paper_example_instance()
        with pytest.raises(ValueError):
            reduce_to_l_diversity(instance, m=2)
        with pytest.raises(ValueError):
            reduce_to_l_diversity(instance, m=13)

    def test_small_instance_default_m_clamped(self):
        instance = ThreeDMInstance(n=1, points=((0, 0, 0),))
        reduced = reduce_to_l_diversity(instance)
        assert reduced.m == 3

    @pytest.mark.parametrize("m", [3, 5, 8, 12])
    def test_properties_hold_for_all_m(self, m):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=m)
        verify_construction_properties(reduced)
        assert reduced.table.distinct_sa_count == m
