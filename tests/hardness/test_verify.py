"""Tests for Lemma 3 verification (both directions where feasible)."""

from __future__ import annotations

import pytest

from repro.core import three_phase
from repro.hardness.reduction import reduce_to_l_diversity
from repro.hardness.three_dm import ThreeDMInstance, paper_example_instance, random_instance, solve_3dm
from repro.hardness.verify import (
    matching_to_generalization,
    minimum_star_threshold,
    verify_lemma3,
)


class TestMatchingToGeneralization:
    def test_paper_example_matching_gives_threshold_stars(self):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        matching = solve_3dm(reduced.instance)
        generalized = matching_to_generalization(reduced, matching)
        assert generalized.star_count() == minimum_star_threshold(reduced) == 60
        assert generalized.is_l_diverse(3)
        # Property 3: every useful QI-group has exactly three tuples.
        assert all(len(rows) == 3 for rows in generalized.groups().values())

    def test_rejects_non_matching(self):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        with pytest.raises(ValueError):
            matching_to_generalization(reduced, (0, 1, 2, 3))


class TestLemma3:
    def test_paper_example_is_consistent(self):
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        report = verify_lemma3(reduced)
        assert report.has_matching
        assert report.constructed_stars == report.star_threshold == 60
        assert report.consistent

    def test_small_yes_instance_with_exhaustive_check(self):
        """n = 2 (6 rows): the 'if' direction is checked by brute force."""
        instance = ThreeDMInstance(n=2, points=((0, 0, 0), (1, 1, 1), (0, 1, 1)))
        reduced = reduce_to_l_diversity(instance, m=3)
        report = verify_lemma3(reduced)
        assert report.has_matching
        assert report.optimal_stars == report.star_threshold
        assert report.consistent

    def test_small_no_instance_needs_more_stars(self):
        """A no-instance's optimal 3-diverse generalization exceeds the threshold."""
        instance = ThreeDMInstance(n=2, points=((0, 0, 0), (1, 0, 1), (0, 0, 1)))
        assert solve_3dm(instance) is None
        reduced = reduce_to_l_diversity(instance, m=3)
        report = verify_lemma3(reduced)
        assert not report.has_matching
        assert report.optimal_stars is not None
        assert report.optimal_stars > report.star_threshold
        assert report.consistent

    def test_random_planted_instances(self):
        for seed in range(3):
            instance = random_instance(2, extra_points=2, seed=seed, solvable=True)
            reduced = reduce_to_l_diversity(instance, m=3)
            report = verify_lemma3(reduced)
            assert report.has_matching
            assert report.consistent


class TestAlgorithmOnHardInstances:
    def test_tp_respects_property4_lower_bound(self):
        """Any 3-diverse generalization has at least 3n(d-1) stars (Property 4)."""
        reduced = reduce_to_l_diversity(paper_example_instance(), m=8)
        result = three_phase.anonymize(reduced.table, 3)
        assert result.star_count >= reduced.star_threshold
        assert result.generalized.is_l_diverse(3)
