"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.dataset.examples import hospital_microdata, phase_two_example
from repro.dataset.synthetic import CensusConfig, make_sal
from repro.dataset.table import Attribute, Schema, Table


def make_random_table(
    n: int,
    d: int = 2,
    qi_domain: int = 3,
    m: int = 4,
    seed: int = 0,
) -> Table:
    """A random categorical table (helper shared by many tests)."""
    rng = random.Random(seed)
    schema = Schema(
        qi=tuple(Attribute(f"Q{i}", tuple(range(qi_domain))) for i in range(d)),
        sensitive=Attribute("S", tuple(range(m))),
    )
    qi_rows = [tuple(rng.randrange(qi_domain) for _ in range(d)) for _ in range(n)]
    sa_values = [rng.randrange(m) for _ in range(n)]
    return Table(schema, qi_rows, sa_values)


@pytest.fixture(autouse=True)
def _isolated_workspace(tmp_path, monkeypatch):
    """Point the service workspace at a per-test directory.

    Keeps CLI/service tests from reading or writing the developer's real
    ``~/.cache/ldiversity`` run store and job ledger.
    """
    monkeypatch.setenv("REPRO_WORKSPACE", str(tmp_path / "workspace"))


@pytest.fixture
def hospital() -> Table:
    """The paper's Table 1."""
    return hospital_microdata()


@pytest.fixture
def phase2_table() -> Table:
    """The Section 5.3 worked example."""
    return phase_two_example()


@pytest.fixture(scope="session")
def small_census() -> Table:
    """A small synthetic SAL-like table shared across integration tests."""
    return make_sal(800, seed=3, config=CensusConfig.scaled(0.2))


@pytest.fixture
def random_table() -> Table:
    """A deterministic random table for generic behavioural tests."""
    return make_random_table(60, d=3, qi_domain=3, m=5, seed=11)
