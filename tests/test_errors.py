"""Tests for the shared exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import AlgorithmInvariantError, IneligibleTableError, ReproError


class TestHierarchy:
    def test_subclassing(self):
        assert issubclass(IneligibleTableError, ReproError)
        assert issubclass(AlgorithmInvariantError, ReproError)
        assert issubclass(ReproError, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise IneligibleTableError("nope")
        with pytest.raises(ReproError):
            raise AlgorithmInvariantError("nope")

    def test_algorithms_raise_the_shared_type(self):
        from repro.core import three_phase
        from repro.dataset.examples import hospital_microdata

        with pytest.raises(ReproError):
            three_phase.anonymize(hospital_microdata(), 4)
