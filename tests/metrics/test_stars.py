"""Tests for star-based metrics."""

from __future__ import annotations

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.metrics.stars import (
    star_count,
    star_count_by_attribute,
    suppressed_tuple_count,
    suppression_ratio,
)


def _table3(hospital):
    partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
    return GeneralizedTable.from_partition(hospital, partition)


class TestStarMetrics:
    def test_star_count(self, hospital):
        assert star_count(_table3(hospital)) == 8

    def test_star_count_by_attribute(self, hospital):
        by_attribute = star_count_by_attribute(_table3(hospital))
        assert by_attribute == {"Age": 4, "Gender": 0, "Education": 4}

    def test_suppressed_tuple_count(self, hospital):
        assert suppressed_tuple_count(_table3(hospital)) == 4

    def test_suppression_ratio(self, hospital):
        generalized = _table3(hospital)
        assert suppression_ratio(generalized) == 8 / 30

    def test_zero_for_identity_partition(self, hospital):
        generalized = GeneralizedTable.from_partition(hospital, Partition.by_qi(hospital))
        assert star_count(generalized) == 0
        assert suppressed_tuple_count(generalized) == 0
        assert suppression_ratio(generalized) == 0.0
        assert all(count == 0 for count in star_count_by_attribute(generalized).values())
