"""Tests for the auxiliary information-loss metrics."""

from __future__ import annotations

import pytest

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.metrics.loss import average_group_size, discernibility, gcp, ncp


class TestNCP:
    def test_zero_for_identity(self, hospital):
        generalized = GeneralizedTable.from_partition(hospital, Partition.by_qi(hospital))
        assert ncp(generalized) == 0.0
        assert gcp(generalized) == 0.0

    def test_star_costs_one(self, hospital):
        partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        # 8 stars, each on an attribute with domain size 3 -> each costs 1.
        assert ncp(generalized) == pytest.approx(8.0)
        assert gcp(generalized) == pytest.approx(8.0 / 30.0)

    def test_subdomain_costs_fractionally(self, hospital):
        cells = []
        for row in range(len(hospital)):
            qi = hospital.qi_row(row)
            cells.append((frozenset({0, 1}), qi[1], qi[2]))
        generalized = GeneralizedTable(
            hospital.schema, cells, hospital.sa_values, [0] * len(hospital)
        )
        # Age has domain size 3; a 2-value sub-domain costs (2-1)/(3-1) = 0.5.
        assert ncp(generalized) == pytest.approx(0.5 * 10)


class TestGroupMetrics:
    def test_discernibility(self, hospital):
        partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        assert discernibility(generalized) == 16 + 16 + 4

    def test_average_group_size(self, hospital):
        partition = Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        generalized = GeneralizedTable.from_partition(hospital, partition)
        assert average_group_size(generalized) == pytest.approx(10 / 3)

    def test_single_group(self, hospital):
        generalized = GeneralizedTable.from_partition(hospital, Partition.single_group(10))
        assert discernibility(generalized) == 100
        assert average_group_size(generalized) == 10
