"""The fused one-pass metric sweep against the standalone and reference paths.

Satellite of the GroupingContext work: across every registered algorithm and
a representative PrivacySpec slice, the fused sweep must be *bit-equal* to
the historical standalone passes (they share summation orders by
construction) and must agree with the pure-Python ``*_reference`` oracles —
exactly for integer metrics, to float tolerance for the KL/NCP oracles
(which sum in a different order).  The chunk-sort path is forced via
``PARALLEL_THRESHOLD = 1`` to prove the parallel sort does not perturb any
downstream metric.
"""

from __future__ import annotations

import math

import pytest

from repro.core import kernels
from repro.engine.core import run_with_spec
from repro.engine.registry import algorithm_registry
from repro.metrics import FUSED_METRIC_NAMES, fused_metrics, unfused_metrics
from repro.metrics.kl import kl_divergence_reference
from repro.metrics.loss import discernibility_reference, ncp_reference
from repro.privacy.spec import (
    EntropyLDiversity,
    FrequencyLDiversity,
    KAnonymity,
    RecursiveCLDiversity,
)

ALGORITHMS = tuple(sorted(algorithm_registry.names()))
SPECS = (
    FrequencyLDiversity(l=2),
    EntropyLDiversity(l=2),
    RecursiveCLDiversity(c=2.0, l=2),
    KAnonymity(k=2),
)


def _published(table, algorithm, spec):
    runner = algorithm_registry.get(algorithm).runner
    return run_with_spec(runner, table, spec).generalized


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("spec", SPECS, ids=lambda spec: spec.describe())
class TestFusedAcrossAlgorithmAndSpec:
    def test_fused_bit_equals_unfused(self, small_census, algorithm, spec):
        generalized = _published(small_census, algorithm, spec)
        fused = fused_metrics(small_census, generalized)
        unfused = unfused_metrics(small_census, generalized)
        assert set(fused) == set(FUSED_METRIC_NAMES)
        assert fused == unfused  # bit-equal, floats included

    def test_fused_matches_reference_oracles(self, small_census, algorithm, spec):
        generalized = _published(small_census, algorithm, spec)
        fused = fused_metrics(small_census, generalized)
        assert fused["stars"] == generalized.star_count_reference()
        assert fused["suppressed"] == generalized.suppressed_tuple_count_reference()
        assert fused["discernibility"] == discernibility_reference(generalized)
        assert math.isclose(
            fused["ncp"], ncp_reference(generalized), rel_tol=1e-9, abs_tol=1e-12
        )
        assert math.isclose(
            fused["kl"],
            kl_divergence_reference(small_census, generalized),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        groups = generalized.groups()
        assert fused["average_group_size"] == len(generalized) / len(groups)
        cells = len(generalized) * generalized.dimension
        assert fused["gcp"] == fused["ncp"] / cells
        assert fused["suppression_ratio"] == fused["stars"] / cells


class TestChunkSortPath:
    def test_forced_chunk_sort_leaves_every_metric_bit_identical(self, small_census):
        spec = FrequencyLDiversity(l=2)
        serial_table = small_census
        serial = fused_metrics(
            serial_table, _published(serial_table, "TP+", spec)
        )

        from repro.dataset.table import Table

        chunked_table = Table(
            small_census.schema, small_census.qi_rows, small_census.sa_values
        )
        saved_threshold = kernels.PARALLEL_THRESHOLD
        saved_chunks = kernels.MIN_SORT_CHUNKS
        kernels.PARALLEL_THRESHOLD = 1
        kernels.MIN_SORT_CHUNKS = 3
        try:
            chunked = fused_metrics(
                chunked_table, _published(chunked_table, "TP+", spec)
            )
        finally:
            kernels.PARALLEL_THRESHOLD = saved_threshold
            kernels.MIN_SORT_CHUNKS = saved_chunks
        assert chunked == serial  # bit-equal across the parallel sort
