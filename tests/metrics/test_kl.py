"""Tests for the KL-divergence utility metric (Equation 2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.metrics.kl import kl_divergence
from tests.conftest import make_random_table


class TestExactCases:
    def test_identity_generalization_has_zero_divergence(self, hospital):
        generalized = GeneralizedTable.from_partition(hospital, Partition.by_qi(hospital))
        assert kl_divergence(hospital, generalized) == pytest.approx(0.0, abs=1e-12)

    def test_hand_computed_single_attribute(self):
        """Two rows, one QI attribute with two values, both suppressed.

        f places 1/2 on each of the two observed points; f* spreads each
        suppressed row uniformly over both domain values, giving 1/2 on each
        point as well — except that the SA values differ, so each point's
        mass comes only from its own row: f*(p) = 1/2 * 1/2 = 1/4, hence
        KL = 2 * (1/2) * ln((1/2)/(1/4)) = ln 2.
        """
        table = make_random_table(2, d=1, qi_domain=2, m=2, seed=0)
        # Force the exact layout described above.
        from repro.dataset.table import Table

        table = Table(table.schema, [(0,), (1,)], [0, 1])
        generalized = GeneralizedTable.from_partition(table, Partition.single_group(2))
        assert kl_divergence(table, generalized) == pytest.approx(math.log(2))

    def test_mismatched_lengths_rejected(self, hospital):
        generalized = GeneralizedTable.from_partition(hospital, Partition.by_qi(hospital))
        with pytest.raises(ValueError):
            kl_divergence(hospital.subset([0, 1]), generalized)

    def test_empty_table(self):
        table = make_random_table(1, d=1, qi_domain=2, m=2, seed=0).subset([])
        generalized = GeneralizedTable(table.schema, [], [], [])
        assert kl_divergence(table, generalized) == 0.0


class TestOrderingProperties:
    def test_full_suppression_is_worse_than_partial(self, hospital):
        fine = GeneralizedTable.from_partition(
            hospital, Partition([[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]], 10)
        )
        coarse = GeneralizedTable.from_partition(hospital, Partition.single_group(10))
        assert kl_divergence(hospital, coarse) > kl_divergence(hospital, fine)

    def test_subdomains_are_better_than_stars(self, hospital):
        """Replacing a star with a covering sub-domain can only help (Section 6.2)."""
        partition = Partition.single_group(10)
        stars = GeneralizedTable.from_partition(hospital, partition)
        cells = []
        for row in range(len(hospital)):
            qi = hospital.qi_row(row)
            cells.append(
                (
                    frozenset({hospital.qi_row(other)[0] for other in range(10)}),
                    frozenset({hospital.qi_row(other)[1] for other in range(10)}),
                    frozenset({hospital.qi_row(other)[2] for other in range(10)}),
                )
            )
            del qi
        subdomains = GeneralizedTable(
            hospital.schema, cells, hospital.sa_values, [0] * len(hospital)
        )
        assert kl_divergence(hospital, subdomains) <= kl_divergence(hospital, stars) + 1e-9

    def test_non_negative(self, random_table):
        generalized = GeneralizedTable.from_partition(
            random_table, Partition.single_group(len(random_table))
        )
        assert kl_divergence(random_table, generalized) >= 0.0

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=100),
        groups=st.integers(min_value=1, max_value=4),
    )
    def test_property_non_negative_and_finite(self, n, seed, groups):
        table = make_random_table(n, d=2, qi_domain=3, m=3, seed=seed)
        blocks = [[] for _ in range(min(groups, n))]
        for row in range(n):
            blocks[row % len(blocks)].append(row)
        generalized = GeneralizedTable.from_partition(table, Partition(blocks, n))
        value = kl_divergence(table, generalized)
        assert value >= 0.0
        assert math.isfinite(value)
