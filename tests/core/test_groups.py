"""Tests for the inverted-list group state (Section 5.5 data structure)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.groups import GroupState, NaiveGroupState


class TestGroupStateBasics:
    def test_empty_state(self):
        state = GroupState()
        assert state.size == 0
        assert state.height == 0
        assert state.pillars() == set()
        assert state.values_present() == []
        assert state.is_l_eligible(5)

    def test_add_and_counts(self):
        state = GroupState.from_pairs([(1, 10), (1, 11), (2, 12)])
        assert state.size == 3
        assert state.count(1) == 2
        assert state.count(2) == 1
        assert state.count(99) == 0
        assert state.height == 2
        assert state.pillars() == {1}
        assert state.distinct_value_count() == 2

    def test_rows_tracking(self):
        state = GroupState.from_pairs([(1, 10), (2, 20), (1, 30)])
        assert sorted(state.rows()) == [10, 20, 30]
        assert sorted(state.rows_of(1)) == [10, 30]
        assert state.rows_of(5) == []

    def test_remove_returns_row(self):
        state = GroupState.from_pairs([(1, 10), (1, 11)])
        row = state.remove_one(1)
        assert row in (10, 11)
        assert state.count(1) == 1
        assert state.size == 1

    def test_remove_missing_value_raises(self):
        state = GroupState()
        with pytest.raises(KeyError):
            state.remove_one(3)

    def test_height_decreases_after_removals(self):
        state = GroupState.from_pairs([(1, 0), (1, 1), (1, 2), (2, 3)])
        assert state.height == 3
        state.remove_one(1)
        assert state.height == 2
        state.remove_one(1)
        assert state.height == 1
        assert state.pillars() == {1, 2}

    def test_height_increases_when_adding(self):
        state = GroupState()
        for row in range(4):
            state.add(7, row)
            assert state.height == row + 1
            assert state.pillars() == {7}

    def test_thin_and_fat(self):
        # size 4, height 2 -> thin for l=2, neither for l=3.
        state = GroupState.from_pairs([(0, 0), (0, 1), (1, 2), (2, 3)])
        assert state.is_thin(2)
        assert not state.is_fat(2)
        assert not state.is_thin(3)
        assert not state.is_fat(3)
        state.add(3, 4)
        assert state.is_fat(2)

    def test_counts_copy(self):
        state = GroupState.from_pairs([(0, 0), (1, 1)])
        counts = state.counts()
        counts[0] = 99
        assert state.count(0) == 1


class TestNaiveEquivalence:
    """The bucketed and naive implementations must agree on every operation."""

    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["add", "remove"]), st.integers(min_value=0, max_value=5)),
            max_size=60,
        )
    )
    def test_random_operation_sequences(self, operations):
        fast = GroupState()
        slow = NaiveGroupState()
        next_row = 0
        for kind, value in operations:
            if kind == "add":
                fast.add(value, next_row)
                slow.add(value, next_row)
                next_row += 1
            else:
                if fast.count(value) == 0:
                    with pytest.raises(KeyError):
                        fast.remove_one(value)
                    with pytest.raises(KeyError):
                        slow.remove_one(value)
                    continue
                fast.remove_one(value)
                slow.remove_one(value)
            assert fast.size == slow.size
            assert fast.height == slow.height
            assert fast.pillars() == slow.pillars()
            assert fast.counts() == slow.counts()
            assert fast.values_present() == slow.values_present()
            for l in (1, 2, 3):
                assert fast.is_l_eligible(l) == slow.is_l_eligible(l)
                assert fast.is_thin(l) == slow.is_thin(l)
                assert fast.is_fat(l) == slow.is_fat(l)

    @given(
        pairs=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=100)),
            max_size=40,
        )
    )
    def test_from_pairs_equivalence(self, pairs):
        fast = GroupState.from_pairs(pairs)
        slow = NaiveGroupState.from_pairs(pairs)
        assert fast.counts() == slow.counts()
        assert fast.height == slow.height
        assert sorted(fast.rows()) == sorted(slow.rows())
