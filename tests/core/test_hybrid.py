"""Tests for the TP+ hybrid (Section 5.6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import hybrid, three_phase
from repro.core.refiners import frequency_greedy_refiner, single_group_refiner
from repro.dataset.examples import phase_three_example
from repro.errors import AlgorithmInvariantError, IneligibleTableError
from tests.conftest import make_random_table


class TestHybridBasics:
    def test_output_is_l_diverse(self, hospital):
        result = hybrid.anonymize(hospital, 2)
        assert result.generalized.is_l_diverse(2)
        assert result.star_count == result.generalized.star_count()

    def test_never_worse_than_plain_tp(self, hospital):
        tp = three_phase.anonymize(hospital, 2)
        tp_plus = hybrid.anonymize(hospital, 2)
        assert tp_plus.star_count <= tp.star_count

    def test_never_worse_than_tp_on_census(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:4])
        tp = three_phase.anonymize(projected, 4)
        tp_plus = hybrid.anonymize(projected, 4)
        assert tp_plus.star_count <= tp.star_count
        assert tp_plus.generalized.is_l_diverse(4)

    def test_phase_three_example(self):
        result = hybrid.anonymize(phase_three_example(), 4)
        assert result.generalized.is_l_diverse(4)
        assert result.tp_stats.phase_reached == 3
        assert result.refined_group_count >= 1

    def test_single_group_refiner_reproduces_tp(self, random_table):
        tp = three_phase.anonymize(random_table, 2)
        tp_plus = hybrid.anonymize(random_table, 2, refiner=single_group_refiner)
        assert tp_plus.star_count == tp.star_count

    def test_frequency_refiner_is_valid(self, random_table):
        result = hybrid.anonymize(random_table, 2, refiner=frequency_greedy_refiner)
        assert result.generalized.is_l_diverse(2)

    def test_rejects_ineligible(self, hospital):
        with pytest.raises(IneligibleTableError):
            hybrid.anonymize(hospital, 3)

    def test_residue_rows_exposed(self, random_table):
        result = hybrid.anonymize(random_table, 2)
        tp = three_phase.anonymize(random_table, 2)
        assert sorted(result.residue_rows) == sorted(tp.residue_rows)


class TestRefinerValidation:
    def test_bad_refiner_not_covering_residue(self, random_table):
        def broken(table, rows, l):
            return [list(rows)[:-1]] if len(rows) > 1 else [list(rows)]

        tp = three_phase.anonymize(random_table, 2)
        if not tp.residue_rows or len(tp.residue_rows) < 2:
            pytest.skip("residue too small to exercise the check")
        with pytest.raises(AlgorithmInvariantError):
            hybrid.anonymize(random_table, 2, refiner=broken)

    def test_bad_refiner_breaking_eligibility(self, random_table):
        def broken(table, rows, l):
            return [[row] for row in rows]

        tp = three_phase.anonymize(random_table, 2)
        if not tp.residue_rows:
            pytest.skip("no residue to refine")
        with pytest.raises(AlgorithmInvariantError):
            hybrid.anonymize(random_table, 2, refiner=broken)


class TestHybridProperties:
    @settings(deadline=None, max_examples=50)
    @given(
        n=st.integers(min_value=1, max_value=50),
        m=st.integers(min_value=2, max_value=5),
        l=st.integers(min_value=2, max_value=4),
        qi_domain=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_dominates_tp_and_stays_diverse(self, n, m, l, qi_domain, seed):
        table = make_random_table(n, d=2, qi_domain=qi_domain, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        tp = three_phase.anonymize(table, l)
        tp_plus = hybrid.anonymize(table, l)
        assert tp_plus.generalized.is_l_diverse(l)
        assert tp_plus.star_count <= tp.star_count
        assert tp_plus.suppressed_tuple_count <= tp.suppressed_tuple_count
