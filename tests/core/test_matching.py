"""Tests for the exact m=2 bipartite-matching algorithm (Section 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import exact, matching
from repro.dataset.table import Attribute, Schema, Table
from repro.errors import IneligibleTableError


def _binary_sa_table(qi_rows, sa_values, qi_domain=3):
    d = len(qi_rows[0])
    schema = Schema(
        qi=tuple(Attribute(f"Q{i}", tuple(range(qi_domain))) for i in range(d)),
        sensitive=Attribute("S", (0, 1)),
    )
    return Table(schema, qi_rows, sa_values)


class TestPairCost:
    def test_identical_rows_cost_zero(self):
        table = _binary_sa_table([(0, 1), (0, 1)], [0, 1])
        assert matching.pair_star_cost(table, 0, 1) == 0

    def test_two_stars_per_differing_attribute(self):
        table = _binary_sa_table([(0, 1), (2, 1)], [0, 1])
        assert matching.pair_star_cost(table, 0, 1) == 2
        table = _binary_sa_table([(0, 1), (2, 2)], [0, 1])
        assert matching.pair_star_cost(table, 0, 1) == 4


class TestOptimalTwoDiverse:
    def test_perfect_pairing(self):
        # Two identical pairs across the SA classes: zero stars achievable.
        table = _binary_sa_table([(0, 0), (1, 1), (0, 0), (1, 1)], [0, 0, 1, 1])
        result = matching.optimal_two_diverse(table)
        assert result.star_count == 0
        assert result.generalized.is_l_diverse(2)
        assert all(len(group) == 2 for group in result.partition)

    def test_requires_exactly_two_sensitive_values(self, hospital):
        with pytest.raises(IneligibleTableError):
            matching.optimal_two_diverse(hospital)

    def test_requires_balanced_classes(self):
        table = _binary_sa_table([(0,), (1,), (2,)], [0, 0, 1])
        with pytest.raises(IneligibleTableError):
            matching.optimal_two_diverse(table)

    def test_matches_brute_force_optimum(self):
        table = _binary_sa_table(
            [(0, 0), (0, 1), (1, 1), (2, 2), (0, 1), (1, 0)],
            [0, 0, 0, 1, 1, 1],
        )
        result = matching.optimal_two_diverse(table)
        assert result.star_count == exact.optimal_star_count(table, 2)

    @settings(deadline=None, max_examples=40)
    @given(
        pairs=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=200),
        d=st.integers(min_value=1, max_value=3),
    )
    def test_never_beaten_by_brute_force(self, pairs, seed, d):
        """The matching optimum equals the exhaustive optimum on m=2 tables."""
        import random

        rng = random.Random(seed)
        n = 2 * pairs
        qi_rows = [tuple(rng.randrange(3) for _ in range(d)) for _ in range(n)]
        sa_values = [0] * pairs + [1] * pairs
        table = _binary_sa_table(qi_rows, sa_values)
        result = matching.optimal_two_diverse(table)
        assert result.generalized.is_l_diverse(2)
        assert result.star_count == exact.optimal_star_count(table, 2)
