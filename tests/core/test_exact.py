"""Tests for the brute-force optimal generalization (testing oracle)."""

from __future__ import annotations

import pytest

from repro.core.exact import _set_partitions, optimal_generalization
from repro.dataset.examples import table_from_group_counts
from tests.conftest import make_random_table


class TestSetPartitions:
    @pytest.mark.parametrize(
        ("n", "bell"), [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52), (6, 203)]
    )
    def test_bell_numbers(self, n, bell):
        assert sum(1 for _ in _set_partitions(list(range(n)))) == bell

    def test_each_partition_is_valid(self):
        items = [0, 1, 2, 3]
        for blocks in _set_partitions(items):
            flattened = sorted(item for block in blocks for item in block)
            assert flattened == items


class TestOptimalGeneralization:
    def test_zero_cost_when_qi_groups_are_eligible(self):
        table = table_from_group_counts([(1, 1), (1, 1)], dimension=2)
        result = optimal_generalization(table, 2)
        assert result.star_count == 0
        assert result.suppressed_tuple_count == 0

    def test_l_diverse_output(self):
        table = make_random_table(7, d=2, qi_domain=2, m=3, seed=3)
        if not table.is_l_eligible(2):
            pytest.skip("random table not eligible")
        result = optimal_generalization(table, 2)
        assert result.generalized.is_l_diverse(2)
        assert result.partition.n_rows == len(table)

    def test_tuple_objective_not_larger_than_star_objective_rows(self):
        table = make_random_table(7, d=3, qi_domain=2, m=3, seed=5)
        if not table.is_l_eligible(2):
            pytest.skip("random table not eligible")
        stars = optimal_generalization(table, 2, objective="stars")
        tuples = optimal_generalization(table, 2, objective="tuples")
        assert tuples.suppressed_tuple_count <= stars.suppressed_tuple_count
        assert stars.star_count <= tuples.star_count

    def test_counts_match_generalized_table(self):
        table = make_random_table(6, d=2, qi_domain=2, m=3, seed=7)
        if not table.is_l_eligible(2):
            pytest.skip("random table not eligible")
        result = optimal_generalization(table, 2)
        assert result.star_count == result.generalized.star_count()
        assert result.suppressed_tuple_count == result.generalized.suppressed_tuple_count()
