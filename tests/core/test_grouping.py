"""Property tests: the shared GroupingContext against brute-force oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import kernels
from repro.core.grouping import GroupingContext, sort_qi_sa
from repro.dataset.table import Attribute, Schema, Table
from tests.strategies import small_tables


def _build(table: Table) -> GroupingContext:
    return GroupingContext.build(
        table.qi_columns,
        table.sa_array,
        [attribute.size for attribute in table.schema.qi],
        table.schema.sensitive.size,
    )


def _brute_force_arrays(table: Table):
    """The historical run-encoding contract, spelled out row by row."""
    n = len(table)
    order = sorted(range(n), key=lambda row: (table.qi_row(row), table.sa_value(row)))
    keyed = [(table.qi_row(row), table.sa_value(row)) for row in order]
    run_bounds = [0] + [
        index for index in range(1, n) if keyed[index] != keyed[index - 1]
    ] + [n]
    if n == 0:
        run_bounds = [0]
    run_values = [keyed[start][1] for start in run_bounds[:-1]]
    group_keys = []
    group_run_bounds = []
    for run_index, start in enumerate(run_bounds[:-1]):
        qi = keyed[start][0]
        if not group_keys or group_keys[-1] != qi:
            group_keys.append(qi)
            group_run_bounds.append(run_index)
    group_run_bounds.append(len(run_values))
    if n == 0:
        group_run_bounds = [0]
    return group_keys, group_run_bounds, run_bounds, run_values, order


class TestGroupingContextOracle:
    @given(table=small_tables(max_rows=12, max_dimension=3, max_sensitive=4))
    @settings(deadline=None)
    def test_matches_brute_force_encoding(self, table):
        context = _build(table)
        keys, group_bounds, run_bounds, run_values, order = _brute_force_arrays(table)
        got_keys, got_group_bounds, got_run_bounds, got_run_values, got_order = (
            context.arrays()
        )
        assert [tuple(row) for row in got_keys.tolist()] == keys
        assert got_group_bounds.tolist() == group_bounds
        assert got_run_bounds.tolist() == run_bounds
        assert got_run_values.tolist() == run_values
        assert got_order.tolist() == order

    @given(table=small_tables(max_rows=12, max_dimension=3, max_sensitive=4))
    @settings(deadline=None)
    def test_group_by_qi_matches_table_reference(self, table):
        context = _build(table)
        assert context.group_by_qi() == table.group_by_qi_reference()

    @given(table=small_tables(max_rows=12, max_dimension=3, max_sensitive=4))
    @settings(deadline=None)
    def test_derived_views_are_consistent(self, table):
        context = _build(table)
        keys, group_bounds, run_bounds, run_values, order = context.arrays()
        assert context.n == len(table)
        assert context.group_count == len(keys)
        assert context.run_count == len(run_values)
        assert context.run_lengths.tolist() == np.diff(run_bounds).tolist()
        assert context.group_row_bounds.tolist() == run_bounds[group_bounds].tolist()
        expected_gids = [
            group_id
            for group_id in range(len(keys))
            for _ in range(group_bounds[group_id + 1] - group_bounds[group_id])
        ]
        assert context.run_group_ids.tolist() == expected_gids
        sizes, heights = context.group_sizes_heights()
        run_lengths = context.run_lengths
        for group_id in range(len(keys)):
            runs = run_lengths[group_bounds[group_id] : group_bounds[group_id + 1]]
            assert sizes[group_id] == runs.sum()
            assert heights[group_id] == runs.max()

    @given(table=small_tables(max_rows=12, max_dimension=3, max_sensitive=4))
    @settings(deadline=None, max_examples=25)
    def test_chunk_sort_path_is_bit_identical(self, table):
        serial = _build(table).arrays()
        saved_threshold = kernels.PARALLEL_THRESHOLD
        saved_chunks = kernels.MIN_SORT_CHUNKS
        kernels.PARALLEL_THRESHOLD = 1
        kernels.MIN_SORT_CHUNKS = 3
        try:
            chunked = _build(table).arrays()
        finally:
            kernels.PARALLEL_THRESHOLD = saved_threshold
            kernels.MIN_SORT_CHUNKS = saved_chunks
        for fast, slow in zip(chunked, serial):
            assert np.array_equal(fast, slow)

    def test_empty_table(self):
        schema = Schema(
            qi=(Attribute("Q0", (0, 1)),), sensitive=Attribute("S", (0, 1))
        )
        table = Table(schema, [], [])
        context = _build(table)
        assert context.n == 0
        assert context.group_count == 0
        assert context.run_count == 0
        assert context.group_by_qi() == {}

    def test_explicit_order_skips_the_sort(self, monkeypatch):
        table = Table(
            Schema(qi=(Attribute("Q0", (0, 1, 2)),), sensitive=Attribute("S", (0, 1))),
            [(2,), (0,), (1,), (0,)],
            [1, 0, 1, 0],
        )
        expected = _build(table)
        order = expected.order.copy()

        def boom(*args, **kwargs):  # pragma: no cover - the assertion below
            raise AssertionError("sort ran despite a precomputed order")

        monkeypatch.setattr("repro.core.grouping.sort_qi_sa", boom)
        context = GroupingContext.build(
            table.qi_columns,
            table.sa_array,
            [attribute.size for attribute in table.schema.qi],
            table.schema.sensitive.size,
            order=order,
        )
        for fast, slow in zip(context.arrays(), expected.arrays()):
            assert np.array_equal(fast, slow)


class TestSortQiSa:
    @given(table=small_tables(max_rows=12, max_dimension=3, max_sensitive=4))
    @settings(deadline=None)
    def test_matches_lexsort(self, table):
        order = sort_qi_sa(
            table.qi_columns,
            table.sa_array,
            [attribute.size for attribute in table.schema.qi],
            table.schema.sensitive.size,
        )
        expected = np.lexsort(
            (table.sa_array, *reversed(table.qi_columns.T))
        )
        assert order.tolist() == expected.tolist()

    def test_huge_domains_fall_back_to_lexsort(self):
        qi = np.asarray([[1], [0], [1], [0]], dtype=np.int64)
        sa = np.asarray([0, 1, 1, 0], dtype=np.int64)
        # A fake domain so large the composite key cannot fit 62 bits.
        order = sort_qi_sa(qi, sa, [1 << 40], 1 << 40)
        assert order.tolist() == [3, 1, 0, 2]


class TestTableGroupingCache:
    def test_grouping_is_computed_once(self):
        table = Table(
            Schema(qi=(Attribute("Q0", (0, 1)),), sensitive=Attribute("S", (0, 1))),
            [(1,), (0,)],
            [0, 1],
        )
        first = table.grouping()
        assert table.grouping() is first

    def test_attach_order_cache_feeds_and_learns(self):
        table = Table(
            Schema(qi=(Attribute("Q0", (0, 1, 2)),), sensitive=Attribute("S", (0, 1))),
            [(2,), (0,), (1,)],
            [1, 0, 1],
        )
        stored: dict[str, np.ndarray] = {}

        class RecordingCache:
            def load(self, table):
                return stored.get("order")

            def store(self, table, order):
                stored["order"] = np.asarray(order)

        table.attach_order_cache(RecordingCache())
        context = table.grouping()
        assert np.array_equal(stored["order"], context.order)

        # A second table served from the same cache skips the sort entirely.
        warm = Table(table.schema, table.qi_rows, table.sa_values)
        warm.attach_order_cache(RecordingCache())
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(
                "repro.core.grouping.sort_qi_sa",
                lambda *a, **k: (_ for _ in ()).throw(AssertionError("sorted")),
            )
            warm_context = warm.grouping()
        assert np.array_equal(warm_context.order, context.order)


def _assert_contexts_identical(fast: GroupingContext, oracle: GroupingContext):
    assert fast.order.tolist() == oracle.order.tolist()
    assert fast.group_keys.tolist() == oracle.group_keys.tolist()
    assert fast.group_run_bounds.tolist() == oracle.group_run_bounds.tolist()
    assert fast.run_bounds.tolist() == oracle.run_bounds.tolist()
    assert fast.run_values.tolist() == oracle.run_values.tolist()


class TestBuildAgainstReference:
    """The key-derived boundary scan against the serial wide-scan oracle."""

    @given(table=small_tables(max_rows=14, max_dimension=3, max_sensitive=4))
    @settings(deadline=None)
    def test_key_scan_is_bit_identical(self, table):
        args = (
            table.qi_columns,
            table.sa_array,
            [attribute.size for attribute in table.schema.qi],
            table.schema.sensitive.size,
        )
        _assert_contexts_identical(
            GroupingContext.build(*args), GroupingContext.build_reference(*args)
        )

    @given(table=small_tables(max_rows=12, max_dimension=2, max_sensitive=3))
    @settings(deadline=None, max_examples=25)
    def test_forced_chunked_encode_is_bit_identical(self, table):
        args = (
            table.qi_columns,
            table.sa_array,
            [attribute.size for attribute in table.schema.qi],
            table.schema.sensitive.size,
        )
        saved_threshold = kernels.PARALLEL_THRESHOLD
        saved_chunks = kernels.MIN_SORT_CHUNKS
        kernels.PARALLEL_THRESHOLD = 1
        kernels.MIN_SORT_CHUNKS = 4
        try:
            fast = GroupingContext.build(*args)
        finally:
            kernels.PARALLEL_THRESHOLD = saved_threshold
            kernels.MIN_SORT_CHUNKS = saved_chunks
        _assert_contexts_identical(fast, GroupingContext.build_reference(*args))

    @given(table=small_tables(max_rows=12, max_dimension=2, max_sensitive=3))
    @settings(deadline=None, max_examples=25)
    def test_warm_start_order_skips_sort_and_matches(self, table):
        args = (
            table.qi_columns,
            table.sa_array,
            [attribute.size for attribute in table.schema.qi],
            table.schema.sensitive.size,
        )
        oracle = GroupingContext.build_reference(*args)
        warm = GroupingContext.build(*args, order=oracle.order)
        _assert_contexts_identical(warm, oracle)

    def test_empty_table_both_paths(self):
        columns = np.zeros((0, 2), dtype=np.int64)
        sa = np.zeros(0, dtype=np.int64)
        fast = GroupingContext.build(columns, sa, [3, 3], 2)
        oracle = GroupingContext.build_reference(columns, sa, [3, 3], 2)
        _assert_contexts_identical(fast, oracle)
        assert fast.n == 0 and fast.group_count == 0 and fast.run_count == 0

    def test_single_row(self):
        columns = np.asarray([[1, 2]], dtype=np.int64)
        sa = np.asarray([1], dtype=np.int64)
        fast = GroupingContext.build(columns, sa, [3, 3], 2)
        oracle = GroupingContext.build_reference(columns, sa, [3, 3], 2)
        _assert_contexts_identical(fast, oracle)
        assert fast.group_count == 1 and fast.run_count == 1
