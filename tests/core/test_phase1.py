"""Tests for phase one (Section 5.2)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.core.phase1 import run_phase_one
from repro.core.state import AlgorithmState
from repro.dataset.examples import hospital_microdata, table_from_group_counts
from tests.conftest import make_random_table


class TestPaperExample:
    def test_hospital_table_l2(self):
        """Section 5.2's walk-through of Table 1 with l = 2.

        After phase one the first three QI-groups ({Adam,Bob}, {Calvin},
        {Danny}) are completely eliminated, the other two survive unchanged,
        and the residue {HIV, HIV, pneumonia, bronchitis} is already
        2-eligible, so the algorithm terminates.
        """
        table = hospital_microdata()
        state = AlgorithmState(table, 2)
        report = run_phase_one(state)
        assert report.satisfied
        assert report.moved == 4
        assert state.residue.size == 4
        disease = table.schema.sensitive
        residue_counts = {
            disease.decode(value): count for value, count in state.residue.counts().items()
        }
        assert residue_counts == {"HIV": 2, "pneumonia": 1, "bronchitis": 1}
        surviving = sorted(group.size for group in state.groups if group.size > 0)
        assert surviving == [2, 4]

    def test_section_5_3_example_groups_unchanged(self, phase2_table):
        """In the Section 5.3 example, Q1 and Q2 are already 3-eligible and Q3 empties."""
        state = AlgorithmState(phase2_table, 3)
        report = run_phase_one(state)
        assert not report.satisfied
        sizes = sorted(group.size for group in state.groups)
        assert sizes == [0, 10, 12]
        assert state.residue.counts() == Counter({0: 4, 1: 4})
        assert report.residue_height == 4
        assert report.residue_size == 8


class TestEligibilityAfterPhaseOne:
    @given(
        n=st.integers(min_value=1, max_value=40),
        m=st.integers(min_value=2, max_value=5),
        l=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=60),
    )
    def test_all_groups_eligible_after_phase_one(self, n, m, l, seed):
        table = make_random_table(n, d=2, qi_domain=3, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        state = AlgorithmState(table, l)
        run_phase_one(state)
        for group in state.groups:
            assert group.is_l_eligible(l)

    @given(
        n=st.integers(min_value=1, max_value=40),
        l=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=60),
    )
    def test_conservation_of_tuples(self, n, l, seed):
        table = make_random_table(n, d=2, qi_domain=3, m=5, seed=seed)
        if not table.is_l_eligible(l):
            return
        state = AlgorithmState(table, l)
        report = run_phase_one(state)
        assert report.moved == state.residue.size
        assert sum(group.size for group in state.groups) + state.residue.size == n

    @given(seed=st.integers(min_value=0, max_value=60))
    def test_result_independent_of_tie_breaking(self, seed):
        """The multiset of removed tuples is unique (Section 5.2 discussion).

        We cannot easily alter the implementation's tie-break, but we can
        verify the stronger consequence of Lemma 4: per group, the counts
        after phase one equal min(h(Q, v), final height) for each value.
        """
        table = make_random_table(30, d=2, qi_domain=2, m=4, seed=seed)
        if not table.is_l_eligible(2):
            return
        original_groups = {
            key: Counter(table.sa_value(row) for row in rows)
            for key, rows in table.group_by_qi().items()
        }
        state = AlgorithmState(table, 2)
        run_phase_one(state)
        for group_id in range(state.group_count):
            key = state.group_qi_vector(group_id)
            final = state.group(group_id).counts()
            original = original_groups[key]
            height = state.group(group_id).height
            if state.group(group_id).size == 0:
                continue
            for value, count in original.items():
                assert final[value] == min(count, height)


class TestLowerBoundInputs:
    def test_report_height_matches_state(self, phase2_table):
        state = AlgorithmState(phase2_table, 3)
        report = run_phase_one(state)
        assert report.residue_height == state.residue.height
        assert report.residue_size == state.residue.size
