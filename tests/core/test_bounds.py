"""Tests for the lower bounds and ratio certificates."""

from __future__ import annotations

from repro.core import three_phase
from repro.core.bounds import (
    certificate,
    star_lower_bound,
    theoretical_star_ratio,
    theoretical_tuple_ratio,
    tuple_lower_bound,
)
from repro.dataset.examples import phase_three_example


class TestTheoreticalRatios:
    def test_values(self):
        assert theoretical_tuple_ratio(4) == 4
        assert theoretical_star_ratio(4, 7) == 28


class TestInstanceBounds:
    def test_zero_bound_for_untouched_tables(self):
        from repro.dataset.examples import table_from_group_counts

        table = table_from_group_counts([(1, 1), (2, 2)])
        assert tuple_lower_bound(table, 2) == 0
        assert star_lower_bound(table, 2) == 0

    def test_hospital_bound(self, hospital):
        bound = tuple_lower_bound(hospital, 2)
        result = three_phase.anonymize(hospital, 2)
        # Phase-one termination is optimal, so the bound is attained exactly
        # when it equals |R.| (here 4 = max(|R.|, 2 * h(R.)) = max(4, 4)).
        assert bound == 4
        assert bound <= result.stats.removed_tuples

    def test_bound_not_exceeding_achieved_objective(self):
        table = phase_three_example()
        result = three_phase.anonymize(table, 4)
        assert tuple_lower_bound(table, 4) <= result.stats.removed_tuples


class TestCertificates:
    def test_certificate_fields(self, hospital):
        result = three_phase.anonymize(hospital, 2)
        cert = certificate(hospital, 2, result.stats.removed_tuples, result.star_count)
        assert cert.l == 2
        assert cert.dimension == 3
        assert cert.tuple_bound == cert.star_bound == 4
        assert cert.tuple_ratio_upper_bound == 1.0
        assert cert.star_ratio_upper_bound == 8 / 4

    def test_certificate_ratios_within_theory(self):
        table = phase_three_example()
        result = three_phase.anonymize(table, 4)
        cert = certificate(table, 4, result.stats.removed_tuples, result.star_count)
        assert cert.tuple_ratio_upper_bound <= theoretical_tuple_ratio(4)
        assert cert.star_ratio_upper_bound <= theoretical_star_ratio(4, table.dimension)

    def test_zero_objective_ratio_is_one(self, hospital):
        cert = certificate(hospital, 2, 0, 0)
        assert cert.tuple_ratio_upper_bound == 1.0
        assert cert.star_ratio_upper_bound == 1.0

    def test_stats_lower_bound_matches_module(self, hospital):
        result = three_phase.anonymize(hospital, 2)
        assert result.stats.tuple_lower_bound == tuple_lower_bound(hospital, 2)
