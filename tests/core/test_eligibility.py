"""Tests for the l-eligibility primitives (Definition 2, Lemma 1)."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.eligibility import (
    eligibility_gap,
    is_l_eligible,
    is_l_eligible_counts,
    merge_counts,
    pillar_height,
    pillars,
)
from tests.strategies import sa_histograms


class TestPillars:
    def test_empty_histogram(self):
        assert pillar_height({}) == 0
        assert pillars({}) == set()

    def test_single_value(self):
        assert pillar_height({3: 5}) == 5
        assert pillars({3: 5}) == {3}

    def test_multiple_pillars(self):
        counts = {0: 3, 1: 3, 2: 1}
        assert pillar_height(counts) == 3
        assert pillars(counts) == {0, 1}


class TestEligibility:
    def test_definition(self):
        # 4 tuples, most frequent value appears twice: 2-eligible, not 3-eligible.
        counts = {0: 2, 1: 1, 2: 1}
        assert is_l_eligible(counts, 2)
        assert not is_l_eligible(counts, 3)

    def test_empty_set_is_always_eligible(self):
        assert is_l_eligible({}, 7)

    def test_counts_form(self):
        assert is_l_eligible_counts(size=6, height=2, l=3)
        assert not is_l_eligible_counts(size=5, height=2, l=3)

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            is_l_eligible({0: 1}, 0)
        with pytest.raises(ValueError):
            is_l_eligible_counts(1, 1, 0)
        with pytest.raises(ValueError):
            eligibility_gap({0: 1}, 0)

    def test_gap(self):
        counts = {0: 3, 1: 1}
        # l * h - |S| = 3*3 - 4 = 5
        assert eligibility_gap(counts, 3) == 5
        assert eligibility_gap(counts, 1) == -1

    def test_gap_sign_matches_eligibility(self):
        counts = {0: 2, 1: 2, 2: 2}
        for l in range(1, 6):
            assert (eligibility_gap(counts, l) <= 0) == is_l_eligible(counts, l)


class TestMergeCounts:
    def test_merge(self):
        merged = merge_counts([{0: 1, 1: 2}, {1: 1, 2: 3}])
        assert merged == Counter({0: 1, 1: 3, 2: 3})

    def test_merge_empty(self):
        assert merge_counts([]) == Counter()


class TestLemma1Monotonicity:
    """Lemma 1: the union of two l-eligible multisets is l-eligible."""

    @given(
        first=sa_histograms(),
        second=sa_histograms(),
        l=st.integers(min_value=1, max_value=5),
    )
    def test_union_of_eligible_sets_is_eligible(self, first, second, l):
        if is_l_eligible(first, l) and is_l_eligible(second, l):
            assert is_l_eligible(merge_counts([first, second]), l)

    @given(histogram=sa_histograms(), l=st.integers(min_value=1, max_value=5))
    def test_gap_consistency(self, histogram, l):
        assert (eligibility_gap(histogram, l) <= 0) == is_l_eligible(histogram, l)

    @given(histogram=sa_histograms())
    def test_pillars_have_maximum_count(self, histogram):
        height = pillar_height(histogram)
        for value in pillars(histogram):
            assert histogram[value] == height
        for value, count in histogram.items():
            assert count <= height
