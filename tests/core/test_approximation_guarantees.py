"""Validation of the paper's approximation guarantees against brute force.

Theorem 2: for l = 2, TP removes at most OPT + 1 tuples.
Theorem 3: TP removes at most l * OPT tuples.
Lemma 2:   the star count of TP is at most l * d * OPT_stars.
Corollary 1: termination in phase one is optimal (tuple minimization).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import exact, three_phase
from repro.core.bounds import star_lower_bound, tuple_lower_bound
from tests.conftest import make_random_table


def _random_eligible_table(n, l, seed, m=4, d=2, qi_domain=3):
    table = make_random_table(n, d=d, qi_domain=qi_domain, m=m, seed=seed)
    if not table.is_l_eligible(l):
        return None
    return table


class TestTheorem2:
    """l = 2: additive error of at most one suppressed tuple."""

    @settings(deadline=None, max_examples=60)
    @given(
        n=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=300),
        qi_domain=st.integers(min_value=1, max_value=3),
    )
    def test_additive_bound(self, n, seed, qi_domain):
        table = _random_eligible_table(n, 2, seed, m=3, qi_domain=qi_domain)
        if table is None:
            return
        result = three_phase.anonymize(table, 2)
        optimum = exact.optimal_tuple_count(table, 2)
        assert result.stats.removed_tuples <= optimum + 1
        assert result.stats.phase_reached <= 2


class TestTheorem3AndLemma2:
    @settings(deadline=None, max_examples=50)
    @given(
        n=st.integers(min_value=3, max_value=8),
        l=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=300),
    )
    def test_tuple_ratio_at_most_l(self, n, l, seed):
        table = _random_eligible_table(n, l, seed)
        if table is None:
            return
        result = three_phase.anonymize(table, l)
        optimum = exact.optimal_tuple_count(table, l)
        assert result.stats.removed_tuples <= l * optimum + (l - 1)

    @settings(deadline=None, max_examples=50)
    @given(
        n=st.integers(min_value=3, max_value=8),
        l=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=300),
    )
    def test_star_ratio_at_most_l_times_d(self, n, l, seed):
        table = _random_eligible_table(n, l, seed)
        if table is None:
            return
        result = three_phase.anonymize(table, l)
        optimum_stars = exact.optimal_star_count(table, l)
        d = table.dimension
        # Lemma 2 with the additive phase-two slack folded in.
        assert result.star_count <= l * d * optimum_stars + d * (l - 1)


class TestCorollary1:
    @settings(deadline=None, max_examples=60)
    @given(
        n=st.integers(min_value=2, max_value=8),
        l=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=300),
    )
    def test_phase_one_termination_is_optimal(self, n, l, seed):
        table = _random_eligible_table(n, l, seed)
        if table is None:
            return
        result = three_phase.anonymize(table, l)
        if result.stats.phase_reached == 1:
            optimum = exact.optimal_tuple_count(table, l)
            assert result.stats.removed_tuples == optimum


class TestLowerBounds:
    @settings(deadline=None, max_examples=60)
    @given(
        n=st.integers(min_value=2, max_value=8),
        l=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=300),
    )
    def test_tuple_lower_bound_is_sound(self, n, l, seed):
        table = _random_eligible_table(n, l, seed)
        if table is None:
            return
        bound = tuple_lower_bound(table, l)
        optimum = exact.optimal_tuple_count(table, l)
        assert bound <= optimum

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(min_value=2, max_value=8),
        l=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=300),
    )
    def test_star_lower_bound_is_sound(self, n, l, seed):
        table = _random_eligible_table(n, l, seed)
        if table is None:
            return
        assert star_lower_bound(table, l) <= exact.optimal_star_count(table, l)


class TestHospitalOptimality:
    def test_tp_is_tuple_optimal_on_the_paper_example(self, hospital):
        """On Table 1 with l = 2, TP terminates in phase one: tuple-optimal.

        The paper's Table 3 publication (and TP) uses 8 stars; exhaustive
        search shows the star-optimal 2-diverse suppression needs only 6
        (pair Adam with Calvin and Bob with Danny), which is consistent with
        TP optimizing tuples, not stars, and with the d-approximation bound
        (8 <= 3 * 6).
        """
        result = three_phase.anonymize(hospital, 2)
        assert result.stats.phase_reached == 1
        assert result.star_count == 8
        assert exact.optimal_tuple_count(hospital, 2) == result.suppressed_tuple_count == 4
        optimal_stars = exact.optimal_star_count(hospital, 2)
        assert optimal_stars == 6
        assert result.star_count <= hospital.dimension * optimal_stars


class TestExactModuleGuards:
    def test_row_cap(self):
        table = make_random_table(12, seed=0)
        with pytest.raises(ValueError):
            exact.optimal_star_count(table, 2, max_rows=10)

    def test_objective_validation(self, hospital):
        with pytest.raises(ValueError):
            exact.optimal_generalization(hospital, 2, objective="nope")

    def test_ineligible_table(self, hospital):
        from repro.errors import IneligibleTableError

        with pytest.raises(IneligibleTableError):
            exact.optimal_star_count(hospital, 5)
