"""Tests for the Section 5.6 coarsening preprocessor."""

from __future__ import annotations

import pytest

from repro.core import three_phase
from repro.core.preprocess import anonymize_with_coarsening, coarsen
from repro.dataset.generalized import STAR, cell_contains
from repro.metrics.kl import kl_divergence


class TestCoarsen:
    def test_depth_zero_collapses_domains(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        coarsened = coarsen(projected, depth=0)
        assert all(attribute.size == 1 for attribute in coarsened.table.schema.qi)
        assert coarsened.table.distinct_qi_count == 1

    def test_large_depth_is_identity_on_group_structure(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        coarsened = coarsen(projected, depth=10)
        assert coarsened.table.distinct_qi_count == projected.distinct_qi_count

    def test_depth_reduces_distinct_qi_vectors(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:4])
        shallow = coarsen(projected, depth=1)
        deep = coarsen(projected, depth=3)
        assert shallow.table.distinct_qi_count <= deep.table.distinct_qi_count

    def test_sa_untouched(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        coarsened = coarsen(projected, depth=1)
        assert coarsened.table.sa_values == projected.sa_values

    def test_decode_cell_covers_original_codes(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:3])
        coarsened = coarsen(projected, depth=1)
        sizes = [attribute.size for attribute in projected.schema.qi]
        for row in range(len(projected)):
            for position in range(projected.dimension):
                coarse_code = coarsened.table.qi_row(row)[position]
                cell = coarsened.decode_cell(position, coarse_code)
                assert cell_contains(cell, projected.qi_row(row)[position], sizes[position])

    def test_invalid_depth(self, small_census):
        with pytest.raises(ValueError):
            coarsen(small_census, depth=-1)


class TestAnonymizeWithCoarsening:
    @pytest.fixture(scope="class")
    def projected(self, small_census):
        return small_census.project(small_census.schema.qi_names[:4])

    def test_output_is_l_diverse(self, projected):
        result = anonymize_with_coarsening(projected, l=4, depth=2)
        assert result.generalized.is_l_diverse(4)

    def test_coarsening_reduces_stars(self, projected):
        """The Section 5.6 trade-off: fewer stars, wider non-star cells."""
        plain = three_phase.anonymize(projected, 6)
        coarse = anonymize_with_coarsening(projected, l=6, depth=1, use_hybrid=False)
        assert coarse.star_count <= plain.star_count
        assert coarse.subdomain_cell_count >= 0

    def test_cells_cover_original_values(self, projected):
        result = anonymize_with_coarsening(projected, l=4, depth=2)
        sizes = [attribute.size for attribute in projected.schema.qi]
        for row in range(0, len(projected), 37):
            for position in range(projected.dimension):
                cell = result.generalized.cell(row, position)
                if cell is STAR:
                    continue
                assert cell_contains(cell, projected.qi_row(row)[position], sizes[position])

    def test_plain_tp_variant(self, projected):
        result = anonymize_with_coarsening(projected, l=4, depth=2, use_hybrid=False)
        assert result.generalized.is_l_diverse(4)
        assert result.l == 4

    def test_kl_divergence_measurable(self, projected):
        result = anonymize_with_coarsening(projected, l=4, depth=2)
        assert kl_divergence(projected, result.generalized) >= 0.0
