"""Tests for the residue refinement strategies."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eligibility import is_l_eligible
from repro.core.refiners import frequency_greedy_refiner, single_group_refiner
from tests.conftest import make_random_table


def _eligible_rows(table, rows, l):
    counts = Counter(table.sa_value(row) for row in rows)
    return is_l_eligible(counts, l)


class TestSingleGroupRefiner:
    def test_returns_single_group(self, random_table):
        rows = list(range(10))
        assert single_group_refiner(random_table, rows, 2) == [rows]

    def test_empty_input(self, random_table):
        assert single_group_refiner(random_table, [], 2) == []


class TestFrequencyGreedyRefiner:
    def test_empty_input(self, random_table):
        assert frequency_greedy_refiner(random_table, [], 2) == []

    def test_partitions_eligible_rows_into_eligible_groups(self, random_table):
        l = 2
        rows = [row for row in range(len(random_table))]
        if not _eligible_rows(random_table, rows, l):
            rows = rows[: 2 * (len(rows) // 2)]
        groups = frequency_greedy_refiner(random_table, rows, l)
        covered = sorted(row for group in groups for row in group)
        assert covered == sorted(rows)
        for group in groups:
            assert _eligible_rows(random_table, group, l)

    def test_groups_are_smaller_than_single_group(self, random_table):
        rows = list(range(len(random_table)))
        groups = frequency_greedy_refiner(random_table, rows, 2)
        if len(rows) >= 4:
            assert len(groups) > 1

    @settings(deadline=None, max_examples=80)
    @given(
        n=st.integers(min_value=1, max_value=50),
        m=st.integers(min_value=2, max_value=6),
        l=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_always_valid_on_eligible_multisets(self, n, m, l, seed):
        table = make_random_table(n, d=2, qi_domain=3, m=m, seed=seed)
        rows = list(range(len(table)))
        if not _eligible_rows(table, rows, l):
            return
        groups = frequency_greedy_refiner(table, rows, l)
        covered = sorted(row for group in groups for row in group)
        assert covered == rows
        for group in groups:
            assert _eligible_rows(table, group, l)
