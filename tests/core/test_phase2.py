"""Tests for phase two (Section 5.3)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.phase1 import run_phase_one
from repro.core.phase2 import run_phase_two
from repro.core.state import AlgorithmState
from repro.dataset.examples import table_from_group_counts
from tests.conftest import make_random_table


def _run_phase_one_and_two(table, l):
    state = AlgorithmState(table, l)
    phase1 = run_phase_one(state)
    phase2 = None
    if not phase1.satisfied:
        phase2 = run_phase_two(state)
    return state, phase1, phase2


class TestSection53Example:
    def test_worked_example_terminates_in_phase_two(self, phase2_table):
        """The Section 5.3 example ends with R l-eligible during phase two."""
        state, phase1, phase2 = _run_phase_one_and_two(phase2_table, 3)
        assert not phase1.satisfied
        assert phase2 is not None and phase2.satisfied
        assert state.residue_is_eligible()
        # Lemma 5: the residue pillar height is unchanged from phase one.
        assert state.residue.height == phase1.residue_height == 4
        # Corollary 3 bound: |R| <= l * h(R.) + l - 1.
        assert state.residue.size <= 3 * phase1.residue_height + 3 - 1

    def test_all_groups_still_eligible(self, phase2_table):
        state, _phase1, _phase2 = _run_phase_one_and_two(phase2_table, 3)
        for group in state.groups:
            assert group.is_l_eligible(3)


class TestPhaseTwoInvariants:
    @given(
        n=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=2, max_value=6),
        l=st.integers(min_value=2, max_value=4),
        qi_domain=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=80),
    )
    def test_lemma5_height_unchanged(self, n, m, l, qi_domain, seed):
        """h(R) never increases during phase two (Lemma 5)."""
        table = make_random_table(n, d=2, qi_domain=qi_domain, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        state = AlgorithmState(table, l)
        phase1 = run_phase_one(state)
        if phase1.satisfied:
            return
        run_phase_two(state)
        assert state.residue.height == phase1.residue_height

    @given(
        n=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=2, max_value=6),
        l=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=80),
    )
    def test_groups_stay_eligible_and_tuples_conserved(self, n, m, l, seed):
        table = make_random_table(n, d=2, qi_domain=4, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        state = AlgorithmState(table, l)
        phase1 = run_phase_one(state)
        if phase1.satisfied:
            return
        phase2 = run_phase_two(state)
        for group in state.groups:
            assert group.is_l_eligible(l)
        assert sum(group.size for group in state.groups) + state.residue.size == n
        assert phase1.moved + phase2.moved == state.residue.size

    @given(
        n=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=2, max_value=6),
        l=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=80),
    )
    def test_corollary3_additive_bound(self, n, m, l, seed):
        """If phase two satisfies R, then |R| <= l * h(R.) + l - 1 (Lemma 6)."""
        table = make_random_table(n, d=2, qi_domain=4, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        state = AlgorithmState(table, l)
        phase1 = run_phase_one(state)
        if phase1.satisfied:
            return
        phase2 = run_phase_two(state)
        if phase2.satisfied:
            assert state.residue.size <= l * phase1.residue_height + l - 1

    @given(
        n=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=80),
    )
    def test_theorem2_l_equals_2_never_needs_phase_three(self, n, m, seed):
        """For l = 2 the algorithm always terminates by the end of phase two."""
        table = make_random_table(n, d=2, qi_domain=4, m=m, seed=seed)
        if not table.is_l_eligible(2):
            return
        state = AlgorithmState(table, 2)
        phase1 = run_phase_one(state)
        if phase1.satisfied:
            return
        phase2 = run_phase_two(state)
        assert phase2.satisfied
        assert state.residue_is_eligible()


class TestDeadGroupsAtExit:
    def test_unsatisfied_phase_two_leaves_only_dead_groups(self):
        """If phase two gives up, every (non-empty) group must be dead."""
        from repro.dataset.examples import phase_three_example

        table = phase_three_example()
        l = 4
        state = AlgorithmState(table, l)
        phase1 = run_phase_one(state)
        assert not phase1.satisfied
        phase2 = run_phase_two(state)
        assert not phase2.satisfied
        for group_id in range(state.group_count):
            if state.group(group_id).size > 0:
                assert state.group_is_dead(group_id)
