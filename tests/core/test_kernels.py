"""Property tests: the fused kernels against their pure-Python oracles."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import kernels


# --------------------------------------------------------------------- sizes


@given(
    st.lists(
        st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6),
        min_size=0,
        max_size=8,
    )
)
def test_group_sizes_heights_match_python(groups_runs):
    run_lengths = np.asarray(
        [length for runs in groups_runs for length in runs], dtype=np.int64
    )
    bounds = np.cumsum([0] + [len(runs) for runs in groups_runs])
    sizes, heights = kernels.group_sizes_heights(run_lengths, bounds)
    assert sizes.tolist() == [sum(runs) for runs in groups_runs]
    assert heights.tolist() == [max(runs) for runs in groups_runs]


# --------------------------------------------------------------- phase one


@given(
    st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=10),
    st.integers(min_value=2, max_value=6),
)
def test_phase_one_stop_height_matches_simulation(counts, l):
    size = sum(counts)
    height = max(counts)
    # Eligible groups never reach the bulk path (state checks eligibility
    # first), so the closed form only has to agree on ineligible inputs.
    assume(height * l > size)
    expected = kernels.phase_one_stop_height_reference(counts, l)
    assert kernels.phase_one_stop_height(counts, size, height, l) == expected


def test_phase_one_stop_height_degenerate_single_value():
    # One value, c tuples: every removal keeps height == size, so the shave
    # runs to extinction.
    assert kernels.phase_one_stop_height([5], 5, 5, 2) == (0, 5)


# ------------------------------------------------------------ overlap counts


@st.composite
def overlap_cases(draw):
    group_count = draw(st.integers(min_value=1, max_value=10))
    runs = draw(st.integers(min_value=0, max_value=60))
    group_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=group_count - 1),
            min_size=runs,
            max_size=runs,
        )
    )
    values = draw(
        st.lists(st.integers(min_value=0, max_value=12), min_size=runs, max_size=runs)
    )
    pending = draw(st.frozensets(st.integers(min_value=0, max_value=12), max_size=6))
    return group_count, group_ids, values, pending


@given(overlap_cases())
def test_pillar_overlap_counts_match_python(case):
    group_count, group_ids, values, pending = case
    ids = np.asarray(group_ids, dtype=np.intp)
    vals = np.asarray(values, dtype=np.int32)
    fast = kernels.pillar_overlap_counts(ids, vals, pending, group_count)
    oracle = kernels.pillar_overlap_counts_reference(ids, vals, pending, group_count)
    assert fast.tolist() == oracle.tolist()


@settings(max_examples=25)
@given(case=overlap_cases())
def test_pillar_overlap_counts_parallel_path_is_exact(case):
    # Force the thread-pool chunked path even for tiny inputs; per-chunk
    # bincount addition must reproduce the single-pass result exactly.
    group_count, group_ids, values, pending = case
    ids = np.asarray(group_ids, dtype=np.intp)
    vals = np.asarray(values, dtype=np.int32)
    saved = kernels.PARALLEL_THRESHOLD
    kernels.PARALLEL_THRESHOLD = 1
    try:
        fast = kernels.pillar_overlap_counts(ids, vals, pending, group_count)
    finally:
        kernels.PARALLEL_THRESHOLD = saved
    oracle = kernels.pillar_overlap_counts_reference(ids, vals, pending, group_count)
    assert fast.tolist() == oracle.tolist()


# ---------------------------------------------------------- composite codes


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=0,
        max_size=30,
    )
)
def test_composite_codes_order_matches_lexsort(rows):
    columns = np.asarray([row[:2] for row in rows], dtype=np.int64).reshape(len(rows), 2)
    sa = np.asarray([row[2] for row in rows], dtype=np.int64)
    keys = kernels.composite_codes(columns, sa, [5, 3], 6)
    assert keys is not None
    by_key = np.argsort(keys, kind="stable")
    by_lexsort = np.lexsort((sa, columns[:, 1], columns[:, 0]))
    assert by_key.tolist() == by_lexsort.tolist()


def test_composite_codes_refuses_oversized_domains():
    columns = np.zeros((2, 1), dtype=np.int64)
    sa = np.zeros(2, dtype=np.int64)
    assert kernels.composite_codes(columns, sa, [1 << 40], 1 << 40) is None


# ------------------------------------------------------------ stable argsort


@given(
    st.lists(st.integers(min_value=-50, max_value=50), max_size=60),
    st.integers(min_value=1, max_value=7),
)
def test_stable_argsort_chunked_matches_reference(values, chunks):
    keys = np.asarray(values, dtype=np.int64)
    fast = kernels.stable_argsort(keys, chunks=chunks)
    assert fast.tolist() == kernels.stable_argsort_reference(keys).tolist()


@settings(max_examples=25)
@given(st.lists(st.integers(min_value=-9, max_value=9), max_size=40))
def test_stable_argsort_default_chunking_under_forced_parallelism(values):
    keys = np.asarray(values, dtype=np.int64)
    saved_threshold = kernels.PARALLEL_THRESHOLD
    saved_chunks = kernels.MIN_SORT_CHUNKS
    kernels.PARALLEL_THRESHOLD = 1
    kernels.MIN_SORT_CHUNKS = 4
    try:
        fast = kernels.stable_argsort(keys)
    finally:
        kernels.PARALLEL_THRESHOLD = saved_threshold
        kernels.MIN_SORT_CHUNKS = saved_chunks
    assert fast.tolist() == kernels.stable_argsort_reference(keys).tolist()


def test_stable_argsort_empty():
    assert kernels.stable_argsort(np.asarray([], dtype=np.int64)).tolist() == []


# --------------------------------------------------------------- row_chunked


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
        max_size=50,
    ),
    st.integers(min_value=1, max_value=6),
)
def test_row_chunked_concatenation_is_bit_identical(rows, chunks):
    matrix = np.asarray(rows, dtype=np.int64).reshape(len(rows), 2)
    whole = matrix.sum(axis=1) * 3 + matrix[:, 0]
    chunked = kernels.row_chunked(
        lambda chunk: chunk.sum(axis=1) * 3 + chunk[:, 0], matrix, chunks=chunks
    )
    assert chunked.tolist() == whole.tolist()


# ------------------------------------------------------- stable sort pairs


@given(
    st.lists(st.integers(min_value=0, max_value=30), max_size=50),
    st.integers(min_value=1, max_value=7),
)
def test_stable_sort_pairs_matches_argsort_and_gather(values, chunks):
    keys = np.asarray(values, dtype=np.int64)
    order, sorted_keys = kernels.stable_sort_pairs(keys, 31, chunks=chunks)
    expected = kernels.stable_argsort_reference(keys)
    assert order.tolist() == expected.tolist()
    assert sorted_keys.tolist() == keys[expected].tolist()


@given(st.lists(st.integers(min_value=0, max_value=30), max_size=50))
def test_stable_sort_pairs_oversized_span_falls_back_identically(values):
    # A key span past the packed-word budget must take the argsort+gather
    # fallback and still honour the exact same contract.
    keys = np.asarray(values, dtype=np.int64)
    order, sorted_keys = kernels.stable_sort_pairs(keys, 1 << 62)
    expected = kernels.stable_argsort_reference(keys)
    assert order.tolist() == expected.tolist()
    assert sorted_keys.tolist() == keys[expected].tolist()


@settings(max_examples=25)
@given(st.lists(st.integers(min_value=0, max_value=9), max_size=40))
def test_stable_sort_pairs_forced_chunked_packing_is_exact(values):
    keys = np.asarray(values, dtype=np.int64)
    saved_threshold = kernels.PARALLEL_THRESHOLD
    saved_chunks = kernels.MIN_SORT_CHUNKS
    kernels.PARALLEL_THRESHOLD = 1
    kernels.MIN_SORT_CHUNKS = 4
    try:
        order, sorted_keys = kernels.stable_sort_pairs(keys, 10)
    finally:
        kernels.PARALLEL_THRESHOLD = saved_threshold
        kernels.MIN_SORT_CHUNKS = saved_chunks
    expected = kernels.stable_argsort_reference(keys)
    assert order.tolist() == expected.tolist()
    assert sorted_keys.tolist() == keys[expected].tolist()


def test_stable_sort_pairs_empty():
    order, sorted_keys = kernels.stable_sort_pairs(np.asarray([], dtype=np.int64), 5)
    assert order.tolist() == []
    assert sorted_keys.tolist() == []


# ----------------------------------------------------- gather / group reduce


@given(
    st.lists(st.integers(min_value=-9, max_value=9), min_size=1, max_size=30),
    st.lists(st.integers(min_value=0, max_value=1000), max_size=40),
    st.integers(min_value=1, max_value=7),
)
def test_take_chunked_matches_reference(values, picks, chunks):
    source = np.asarray(values, dtype=np.int64)
    indices = np.asarray([pick % len(values) for pick in picks], dtype=np.intp)
    fast = kernels.take(source, indices, chunks=chunks)
    assert fast.tolist() == kernels.take_reference(source, indices).tolist()


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)),
        min_size=1,
        max_size=20,
    ),
    st.lists(st.integers(min_value=0, max_value=1000), max_size=25),
)
def test_take_rows_under_forced_parallelism(rows, picks):
    matrix = np.asarray(rows, dtype=np.int64)
    indices = np.asarray([pick % len(rows) for pick in picks], dtype=np.intp)
    saved_threshold = kernels.PARALLEL_THRESHOLD
    saved_chunks = kernels.MIN_SORT_CHUNKS
    kernels.PARALLEL_THRESHOLD = 1
    kernels.MIN_SORT_CHUNKS = 4
    try:
        fast = kernels.take(matrix, indices)
    finally:
        kernels.PARALLEL_THRESHOLD = saved_threshold
        kernels.MIN_SORT_CHUNKS = saved_chunks
    assert fast.tolist() == kernels.take_reference(matrix, indices).tolist()


def test_take_empty_indices():
    source = np.asarray([[1, 2], [3, 4]], dtype=np.int64)
    assert kernels.take(source, np.asarray([], dtype=np.intp)).tolist() == []


@st.composite
def grouped_reduce_cases(draw):
    width = draw(st.integers(min_value=1, max_value=3))
    sizes = draw(st.lists(st.integers(min_value=1, max_value=5), max_size=8))
    n = sum(sizes)
    flat = draw(
        st.lists(
            st.integers(min_value=0, max_value=9), min_size=n * width, max_size=n * width
        )
    )
    columns = np.asarray(flat, dtype=np.int64).reshape(n, width)
    members = np.asarray(draw(st.permutations(range(n))), dtype=np.intp)
    starts = np.cumsum([0] + sizes)[:-1].astype(np.int64)
    return columns, members, starts


@given(grouped_reduce_cases(), st.integers(min_value=1, max_value=5))
def test_grouped_min_max_chunked_matches_reference(case, chunks):
    columns, members, starts = case
    fast_min, fast_max = kernels.grouped_min_max(columns, members, starts, chunks=chunks)
    oracle_min, oracle_max = kernels.grouped_min_max_reference(columns, members, starts)
    assert fast_min.tolist() == oracle_min.tolist()
    assert fast_max.tolist() == oracle_max.tolist()


@settings(max_examples=25)
@given(grouped_reduce_cases())
def test_grouped_min_max_under_forced_parallelism(case):
    columns, members, starts = case
    saved_threshold = kernels.PARALLEL_THRESHOLD
    saved_chunks = kernels.MIN_SORT_CHUNKS
    kernels.PARALLEL_THRESHOLD = 1
    kernels.MIN_SORT_CHUNKS = 4
    try:
        fast_min, fast_max = kernels.grouped_min_max(columns, members, starts)
    finally:
        kernels.PARALLEL_THRESHOLD = saved_threshold
        kernels.MIN_SORT_CHUNKS = saved_chunks
    oracle_min, oracle_max = kernels.grouped_min_max_reference(columns, members, starts)
    assert fast_min.tolist() == oracle_min.tolist()
    assert fast_max.tolist() == oracle_max.tolist()


def test_grouped_min_max_no_groups():
    columns = np.zeros((0, 2), dtype=np.int64)
    empty = np.asarray([], dtype=np.intp)
    minima, maxima = kernels.grouped_min_max(columns, empty, np.asarray([], dtype=np.int64))
    assert minima.shape == (0, 2) and maxima.shape == (0, 2)


def test_grouped_min_max_single_group_is_whole_table_reduction():
    columns = np.asarray([[3, 1], [2, 5], [3, 0]], dtype=np.int64)
    members = np.asarray([2, 0, 1], dtype=np.intp)
    starts = np.asarray([0], dtype=np.int64)
    minima, maxima = kernels.grouped_min_max(columns, members, starts)
    assert minima.tolist() == [[2, 0]]
    assert maxima.tolist() == [[3, 5]]
