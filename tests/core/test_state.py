"""Tests for the joint algorithm state (groups + residue, Section 5.1 vocabulary)."""

from __future__ import annotations

import pytest

from repro.core.groups import NaiveGroupState
from repro.core.state import AlgorithmState
from repro.dataset.examples import table_from_group_counts
from repro.errors import IneligibleTableError


class TestConstruction:
    def test_groups_match_qi_grouping(self, hospital):
        state = AlgorithmState(hospital, 2)
        assert state.group_count == hospital.distinct_qi_count
        total = sum(group.size for group in state.groups)
        assert total == len(hospital)
        assert state.residue.size == 0
        assert state.table is hospital
        assert state.l == 2

    def test_rejects_small_l(self, hospital):
        with pytest.raises(ValueError):
            AlgorithmState(hospital, 1)

    def test_rejects_ineligible_table(self, hospital):
        with pytest.raises(IneligibleTableError):
            AlgorithmState(hospital, 3)  # hospital is only 2-eligible

    def test_custom_state_factory(self, hospital):
        state = AlgorithmState(hospital, 2, state_factory=NaiveGroupState)
        assert all(isinstance(group, NaiveGroupState) for group in state.groups)
        assert isinstance(state.residue, NaiveGroupState)

    def test_group_qi_vectors_are_distinct(self, hospital):
        state = AlgorithmState(hospital, 2)
        vectors = {state.group_qi_vector(group_id) for group_id in range(state.group_count)}
        assert len(vectors) == state.group_count


class TestMovement:
    def test_move_to_residue(self):
        table = table_from_group_counts([(2, 2, 0), (1, 1, 2)])
        state = AlgorithmState(table, 2)
        before = state.group(0).size
        row = state.move_to_residue(0, 0)
        assert state.group(0).size == before - 1
        assert state.residue.size == 1
        assert state.residue.count(0) == 1
        assert table.sa_value(row) == 0

    def test_removed_tuple_count(self):
        table = table_from_group_counts([(2, 2)])
        state = AlgorithmState(table, 2)
        assert state.removed_tuple_count() == 0
        state.move_to_residue(0, 0)
        state.move_to_residue(0, 1)
        assert state.removed_tuple_count() == 2


class TestVocabulary:
    def test_thin_fat(self):
        # group 0: (2, 2, 0) -> thin for l=2; group 1: (2, 2, 1) -> fat for l=2.
        table = table_from_group_counts([(2, 2, 0), (2, 2, 1)])
        state = AlgorithmState(table, 2)
        assert state.group_is_thin(0)
        assert not state.group_is_fat(0)
        assert state.group_is_fat(1)
        assert not state.group_is_thin(1)

    def test_conflicting_and_dead(self):
        table = table_from_group_counts([(2, 2), (1, 1)])
        state = AlgorithmState(table, 2)
        # Nothing in R yet: no conflicts, everything alive.
        assert not state.group_is_conflicting(0)
        assert state.group_is_alive(0)
        # Put a tuple with SA value 0 into R: value 0 becomes R's pillar.
        state.move_to_residue(1, 0)
        assert state.conflicting_pillars(0) == {0}
        assert state.group_is_conflicting(0)
        # Group 0 is thin and conflicting -> dead.
        assert state.group_is_dead(0)
        # Group 1 now holds a single tuple of value 1: pillar {1}, thin, and
        # 1 is not a pillar of R, so it stays alive.
        assert state.group_is_alive(1)

    def test_empty_group_is_dead(self):
        table = table_from_group_counts([(1, 1), (1, 1)])
        state = AlgorithmState(table, 2)
        state.move_to_residue(0, 0)
        state.move_to_residue(0, 1)
        assert state.group(0).size == 0
        assert state.group_is_dead(0)

    def test_residue_eligibility(self):
        table = table_from_group_counts([(1, 1), (1, 1)])
        state = AlgorithmState(table, 2)
        assert state.residue_is_eligible()  # empty residue
        state.move_to_residue(0, 0)
        assert not state.residue_is_eligible()
        state.move_to_residue(0, 1)
        assert state.residue_is_eligible()


class TestOutputs:
    def test_retained_and_residue_rows_cover_table(self):
        table = table_from_group_counts([(2, 2, 1), (1, 1, 1)])
        state = AlgorithmState(table, 2)
        state.move_to_residue(0, 0)
        state.move_to_residue(1, 2)
        retained = [row for group in state.retained_group_rows() for row in group]
        residue = state.residue_rows()
        assert sorted(retained + residue) == list(range(len(table)))
        assert len(residue) == 2
