"""End-to-end tests of the TP driver (:mod:`repro.core.three_phase`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import three_phase
from repro.core.groups import NaiveGroupState
from repro.dataset.examples import phase_three_example, phase_two_example
from repro.errors import IneligibleTableError
from tests.conftest import make_random_table
from tests.strategies import eligible_tables


class TestAnonymizeOnExamples:
    def test_hospital_terminates_in_phase_one_with_8_stars(self, hospital):
        result = three_phase.anonymize(hospital, 2)
        assert result.stats.phase_reached == 1
        assert result.star_count == 8
        assert result.suppressed_tuple_count == 4
        assert result.generalized.is_l_diverse(2)

    def test_phase_two_example(self, phase2_table):
        result = three_phase.anonymize(phase2_table, 3)
        assert result.stats.phase_reached == 2
        assert result.generalized.is_l_diverse(3)

    def test_phase_three_example(self):
        result = three_phase.anonymize(phase_three_example(), 4)
        assert result.stats.phase_reached == 3
        assert result.stats.phase3_rounds >= 1
        assert result.generalized.is_l_diverse(4)

    def test_stats_accounting(self, phase2_table):
        result = three_phase.anonymize(phase2_table, 3)
        stats = result.stats
        assert stats.l == 3
        assert (
            stats.phase1_moved + stats.phase2_moved + stats.phase3_moved
            == stats.removed_tuples
            == len(result.residue_rows)
        )
        assert stats.initial_group_count == phase2_table.distinct_qi_count
        assert stats.tuple_lower_bound >= 1
        assert stats.empirical_tuple_ratio >= 1.0


class TestAnonymizeValidation:
    def test_rejects_l_below_two(self, hospital):
        with pytest.raises(ValueError):
            three_phase.anonymize(hospital, 1)

    def test_rejects_ineligible_table(self, hospital):
        with pytest.raises(IneligibleTableError):
            three_phase.anonymize(hospital, 3)

    def test_partition_covers_every_row_exactly_once(self, random_table):
        result = three_phase.anonymize(random_table, 2)
        covered = sorted(row for group in result.partition for row in group)
        assert covered == list(range(len(random_table)))

    def test_residue_rows_are_a_group_of_the_partition(self, random_table):
        result = three_phase.anonymize(random_table, 2)
        if result.residue_rows:
            assert sorted(result.residue_rows) in [sorted(g) for g in result.partition]

    def test_deterministic(self, random_table):
        first = three_phase.anonymize(random_table, 2)
        second = three_phase.anonymize(random_table, 2)
        assert first.partition.groups == second.partition.groups
        assert first.star_count == second.star_count

    def test_naive_state_factory_gives_same_objective(self, random_table):
        fast = three_phase.anonymize(random_table, 2)
        slow = three_phase.anonymize(random_table, 2, state_factory=NaiveGroupState)
        assert fast.star_count == slow.star_count
        assert fast.stats.removed_tuples == slow.stats.removed_tuples
        assert fast.stats.phase_reached == slow.stats.phase_reached


class TestAnonymizeProperties:
    @settings(deadline=None, max_examples=60)
    @given(table=eligible_tables(l=2, max_rows=16), l=st.integers(min_value=2, max_value=3))
    def test_output_is_l_diverse_whenever_feasible(self, table, l):
        if not table.is_l_eligible(l):
            return
        result = three_phase.anonymize(table, l)
        assert result.generalized.is_l_diverse(l)
        assert result.generalized.star_count() == result.star_count

    @settings(deadline=None, max_examples=60)
    @given(
        n=st.integers(min_value=1, max_value=60),
        m=st.integers(min_value=2, max_value=6),
        l=st.integers(min_value=2, max_value=5),
        qi_domain=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_random_tables_roundtrip(self, n, m, l, qi_domain, seed):
        table = make_random_table(n, d=3, qi_domain=qi_domain, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        result = three_phase.anonymize(table, l)
        assert result.generalized.is_l_diverse(l)
        # Retained groups never pay stars: stars come only from the residue.
        assert result.star_count <= table.dimension * len(result.residue_rows)
        # Sensitive values are never modified.
        assert result.generalized.sa_values == table.sa_values

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_zero_residue_means_zero_stars(self, n, seed):
        table = make_random_table(n, d=2, qi_domain=2, m=3, seed=seed)
        if not table.is_l_eligible(2):
            return
        result = three_phase.anonymize(table, 2)
        if not result.residue_rows:
            assert result.star_count == 0


class TestScaling:
    def test_runs_on_synthetic_census(self, small_census):
        projected = small_census.project(small_census.schema.qi_names[:4])
        result = three_phase.anonymize(projected, 6)
        assert result.generalized.is_l_diverse(6)
        assert result.stats.phase_reached in (1, 2, 3)
