"""Tests for phase three (Section 5.4)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.phase1 import run_phase_one
from repro.core.phase2 import run_phase_two
from repro.core.phase3 import run_phase_three
from repro.core.state import AlgorithmState
from repro.dataset.examples import phase_three_example, table_from_group_counts
from tests.conftest import make_random_table


def _run_all_phases(table, l):
    state = AlgorithmState(table, l)
    phase1 = run_phase_one(state)
    phase2 = None
    phase3 = None
    if not phase1.satisfied:
        phase2 = run_phase_two(state)
        if not phase2.satisfied:
            phase3 = run_phase_three(state)
    return state, phase1, phase2, phase3


class TestSection54Example:
    """The Section 5.4 walk-through: Q1=(3,1,2,3,3), Q2=(1,3,2,3,3), R=(4,4,4,0,0), l=4."""

    def test_example_reaches_phase_three(self):
        table = phase_three_example()
        state = AlgorithmState(table, 4)
        phase1 = run_phase_one(state)
        assert not phase1.satisfied
        # After phase one the residue is exactly (4, 4, 4, 0, 0) and the two
        # big groups are untouched, thin and conflicting, so phase two has no
        # alive sensitive value to work with.
        assert state.residue.counts() == {0: 4, 1: 4, 2: 4}
        phase2 = run_phase_two(state)
        assert not phase2.satisfied
        assert phase2.moved == 0

    def test_example_terminates_in_one_round(self):
        table = phase_three_example()
        state, _p1, _p2, phase3 = _run_all_phases(table, 4)
        assert phase3 is not None
        assert state.residue_is_eligible()
        # The paper's walk-through needs a single round; Lemma 9 allows at
        # most h(R..) = 4 rounds, our deterministic tie-breaking needs 1.
        assert phase3.rounds == 1
        for group in state.groups:
            assert group.is_l_eligible(4)

    def test_example_final_residue_size(self):
        """In the walk-through, R ends with exactly l * h(R) = 20 tuples."""
        table = phase_three_example()
        state, *_ = _run_all_phases(table, 4)
        assert state.residue.size == 4 * state.residue.height


class TestPhaseThreeInvariants:
    @settings(deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=35),
        m=st.integers(min_value=3, max_value=6),
        l=st.integers(min_value=3, max_value=5),
        qi_domain=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=120),
    )
    def test_full_pipeline_always_terminates_eligible(self, n, m, l, qi_domain, seed):
        table = make_random_table(n, d=2, qi_domain=qi_domain, m=m, seed=seed)
        if not table.is_l_eligible(l):
            return
        state, phase1, phase2, phase3 = _run_all_phases(table, l)
        assert state.residue_is_eligible()
        for group in state.groups:
            assert group.is_l_eligible(l)
        moved = phase1.moved
        if phase2 is not None:
            moved += phase2.moved
        if phase3 is not None:
            moved += phase3.moved
        assert moved == state.residue.size
        assert sum(group.size for group in state.groups) + state.residue.size == n

    def test_round_bound_lemma9(self):
        """The number of rounds never exceeds h(R..) (Lemma 9)."""
        table = phase_three_example()
        state = AlgorithmState(table, 4)
        phase1 = run_phase_one(state)
        assert not phase1.satisfied
        phase2 = run_phase_two(state)
        assert not phase2.satisfied
        height_before_phase3 = state.residue.height
        phase3 = run_phase_three(state)
        assert phase3.rounds <= max(height_before_phase3, 1)

    def test_phase_three_moved_counter(self):
        table = phase_three_example()
        state = AlgorithmState(table, 4)
        run_phase_one(state)
        run_phase_two(state)
        before = state.residue.size
        report = run_phase_three(state)
        assert state.residue.size - before == report.moved

    def test_noop_when_already_eligible(self):
        table = table_from_group_counts([(1, 1), (1, 1)])
        state = AlgorithmState(table, 2)
        report = run_phase_three(state)
        assert report.rounds == 0
        assert report.moved == 0

    def test_theorem3_multiplicative_bound_on_example(self):
        """|R^| <= l(l-1) h(R.) + l - 1 (the bound derived in Theorem 3's proof)."""
        table = phase_three_example()
        l = 4
        state = AlgorithmState(table, l)
        phase1 = run_phase_one(state)
        run_phase_two(state)
        run_phase_three(state)
        assert state.residue.size <= l * (l - 1) * phase1.residue_height + l - 1
