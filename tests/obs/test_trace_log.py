"""Unit tests for the trace store and the JSON-lines log formatter."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.log import JsonLogFormatter, configure_logging
from repro.obs.trace import Span, TraceStore, new_request_id


class TestRequestId:
    def test_ids_are_hex_and_unique(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(value) == 32 and int(value, 16) >= 0 for value in ids)


class TestTraceStore:
    def test_begin_add_get(self):
        store = TraceStore()
        store.begin("job-1", "rid-1")
        store.add("job-1", Span("submit", start=10.0, seconds=0.5))
        store.add(
            "job-1",
            Span("engine:load", seconds=0.1, parent="attempt-1"),
        )
        trace = store.get("job-1")
        assert trace["request_id"] == "rid-1"
        names = [span["name"] for span in trace["spans"]]
        assert names == ["submit", "engine:load"]
        assert trace["spans"][1]["parent"] == "attempt-1"
        assert store.request_id("job-1") == "rid-1"

    def test_marks_time_later_spans(self):
        store = TraceStore()
        store.begin("j", "r")
        store.mark("j", "queued", when=100.0)
        assert store.mark_at("j", "queued") == 100.0
        assert store.mark_at("j", "missing") is None
        assert store.mark_at("ghost", "queued") is None

    def test_unknown_job_is_none_and_adds_are_noops(self):
        store = TraceStore()
        assert store.get("nope") is None
        store.add("nope", Span("x"))  # silently ignored
        store.mark("nope", "queued")
        assert store.get("nope") is None

    def test_capacity_evicts_oldest(self):
        store = TraceStore(capacity=2)
        for index in range(3):
            store.begin(f"job-{index}", f"rid-{index}")
        assert store.get("job-0") is None
        assert store.get("job-1") is not None
        assert store.get("job-2") is not None
        assert len(store) == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestJsonLogFormatter:
    def _format(self, level=logging.WARNING, message="boom", **extra) -> dict:
        record = logging.LogRecord(
            name="repro.test",
            level=level,
            pathname=__file__,
            lineno=1,
            msg=message,
            args=(),
            exc_info=None,
        )
        for key, value in extra.items():
            setattr(record, key, value)
        return json.loads(JsonLogFormatter().format(record))

    def test_base_fields(self):
        entry = self._format()
        assert entry["level"] == "warning"
        assert entry["logger"] == "repro.test"
        assert entry["message"] == "boom"
        assert entry["ts"].endswith("Z")

    def test_context_fields_lifted_from_extra(self):
        entry = self._format(
            request_id="rid", job_id="j1", route="/v1/jobs", status=503
        )
        assert entry["request_id"] == "rid"
        assert entry["job_id"] == "j1"
        assert entry["route"] == "/v1/jobs"
        assert entry["status"] == 503
        assert "outcome" not in entry  # absent context stays absent

    def test_exception_rendered(self):
        try:
            raise RuntimeError("kaput")
        except RuntimeError:
            import sys

            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "failed", (), sys.exc_info()
            )
        entry = json.loads(JsonLogFormatter().format(record))
        assert "RuntimeError: kaput" in entry["exception"]


class TestConfigureLogging:
    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            configure_logging("xml")

    def test_json_format_installs_formatter(self):
        try:
            configure_logging("json")
            handlers = logging.getLogger().handlers
            assert any(
                isinstance(handler.formatter, JsonLogFormatter)
                for handler in handlers
            )
        finally:
            configure_logging("text")
            logging.getLogger().handlers.clear()
