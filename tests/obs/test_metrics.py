"""Unit tests for the obs metrics core: instruments, exposition, exactness."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_unlabeled_inc_and_total(self):
        counter = Counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("jobs_total", "Jobs.", ("state",))
        counter.inc(state="done")
        counter.inc(state="done")
        counter.inc(state="failed")
        assert counter.value(state="done") == 2.0
        assert counter.value(state="failed") == 1.0
        assert counter.value(state="cancelled") == 0.0
        assert counter.total() == 3.0

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_label_set_rejected(self):
        counter = Counter("c_total", "", ("route",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(route="/x", extra="nope")

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("1bad", "")
        with pytest.raises(ValueError):
            Counter("ok_total", "", ("__reserved",))
        with pytest.raises(ValueError):
            Counter("ok_total", "", ("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth", "")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4.0

    def test_callback_resolved_at_read_time(self):
        box = {"value": 1.0}
        gauge = Gauge("live", "")
        gauge.set_function(lambda: box["value"])
        assert gauge.value() == 1.0
        box["value"] = 7.0
        assert gauge.value() == 7.0
        # set() replaces the callback again
        gauge.set(2.0)
        assert gauge.value() == 2.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        histogram = Histogram("seconds", "", buckets=(0.1, 1.0))
        histogram.observe(0.1)   # le="0.1" (inclusive)
        histogram.observe(0.5)   # le="1"
        histogram.observe(3.0)   # +Inf only
        samples = histogram._samples()[0]
        assert samples["buckets"][0.1] == 1.0
        assert samples["buckets"][1.0] == 2.0  # cumulative
        assert samples["count"] == 3.0
        assert samples["sum"] == pytest.approx(3.6)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(3.6)

    def test_render_emits_bucket_sum_count(self):
        histogram = Histogram("h", "", ("route",), buckets=(0.5,))
        histogram.observe(0.2, route="/x")
        text = "\n".join(histogram._render())
        assert 'h_bucket{route="/x",le="0.5"} 1' in text
        assert 'h_bucket{route="/x",le="+Inf"} 1' in text
        assert 'h_count{route="/x"} 1' in text

    def test_duplicate_or_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", "", buckets=(1.0, 1.0))


class TestRegistry:
    def test_getters_are_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "help", ("x",))
        second = registry.counter("a_total", "other help", ("x",))
        assert first is second

    def test_kind_and_label_mismatch_raise(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "", ("x",))
        with pytest.raises(ValueError):
            registry.gauge("a_total", "")
        with pytest.raises(ValueError):
            registry.counter("a_total", "", ("y",))

    def test_render_and_parse_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "Total requests.", ("route", "status"))
        counter.inc(3, route="/v1/jobs", status="202")
        registry.gauge("depth", "Queue depth.").set(4)
        histogram = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        text = registry.render()
        assert "# TYPE req_total counter" in text
        assert "# HELP depth Queue depth." in text
        parsed = parse_prometheus_text(text)
        assert parsed[("req_total", (("route", "/v1/jobs"), ("status", "202")))] == 3.0
        assert parsed[("depth", ())] == 4.0
        assert parsed[("lat_seconds_bucket", (("le", "0.1"),))] == 1.0
        assert parsed[("lat_seconds_count", ())] == 1.0

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", "", ("path",)).inc(path='a"b\\c\nd')
        parsed = parse_prometheus_text(registry.render())
        assert parsed[("e_total", (("path", 'a"b\\c\nd'),))] == 1.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("!!! not exposition format")

    def test_snapshot_is_picklable_and_resolves_callbacks(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "").inc()
        registry.gauge("g", "").set_function(lambda: 9.0)
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["g"]["samples"][0]["value"] == 9.0


class TestConcurrencyExactness:
    """The registry's reason to exist: no lost increments across threads."""

    def test_counter_hammer_is_exact(self):
        counter = Counter("hammer_total", "", ("worker",))
        threads, per_thread = 8, 5_000

        def work(index: int) -> None:
            for _ in range(per_thread):
                counter.inc(worker=str(index % 2))

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.total() == threads * per_thread

    def test_histogram_hammer_is_exact(self):
        histogram = Histogram("hh_seconds", "", buckets=(0.5,))
        threads, per_thread = 8, 2_000

        def work() -> None:
            for index in range(per_thread):
                histogram.observe(0.25 if index % 2 else 0.75)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert histogram.count() == threads * per_thread
