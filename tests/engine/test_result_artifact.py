"""ResultArtifact: legacy byte-identity, persistence round trips, validation."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.dataset.examples import hospital_microdata
from repro.dataset.synthetic import CensusConfig, make_sal
from repro.engine.columnstore import RESULT_META_FILE, ResultArtifact
from repro.engine.sinks import render_cell_value
from repro.errors import DataSourceError


@pytest.fixture(scope="module")
def published():
    table = make_sal(800, seed=11, config=CensusConfig.scaled(0.2))
    return table, GeneralizedTable.from_partition(table, Partition.by_qi(table))


def _legacy_rows(generalized):
    """The historical pool payload: decoded records rendered row by row."""
    schema = generalized.schema
    header = list(schema.qi_names) + [schema.sensitive.name]
    rows = []
    for row in range(len(generalized)):
        record = generalized.decoded_record(row)
        rows.append([str(render_cell_value(record[name])) for name in header])
    return header, rows


def _legacy_csv(header, rows):
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue().encode("utf-8")


# --------------------------------------------------------------- rendering


def test_rows_match_the_legacy_render(published):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    assert artifact is not None
    header, rows = _legacy_rows(generalized)
    assert artifact.header == header
    assert artifact.rows() == rows


def test_csv_bytes_match_the_legacy_render(published):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    assert artifact.csv_bytes() == _legacy_csv(*_legacy_rows(generalized))


def test_chunked_streaming_equals_monolithic_write(published):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    whole = artifact.csv_bytes()
    for chunk_rows in (1, 7, 333, 10**6):
        chunks = list(artifact.iter_csv_chunks(chunk_rows))
        assert b"".join(chunks) == whole
        # header rides in the first chunk exactly once
        assert chunks[0].startswith(",".join(artifact.header).encode("utf-8"))


def test_chunk_rows_must_be_positive(published):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    with pytest.raises(ValueError):
        list(artifact.iter_csv_chunks(0))


def test_hospital_stars_render_as_star_text():
    table = hospital_microdata()
    generalized = GeneralizedTable.from_partition(table, Partition.by_qi(table))
    artifact = ResultArtifact.from_generalized(generalized)
    header, rows = _legacy_rows(generalized)
    assert artifact.rows() == rows
    assert artifact.csv_bytes() == _legacy_csv(header, rows)


def test_tables_without_columnar_form_return_none(published):
    _, generalized = published
    reference = GeneralizedTable.from_partition_reference(
        *_rebuild_inputs(published)
    )
    assert ResultArtifact.from_generalized(reference) is None


def _rebuild_inputs(published):
    table, _ = published
    return table, Partition.by_qi(table)


# ------------------------------------------------------------- persistence


def test_save_mmap_load_round_trip_is_byte_identical(published, tmp_path):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    target = tmp_path / "result"
    size = artifact.save(target)
    assert size > 0
    assert ResultArtifact.is_artifact_dir(target)
    expected = artifact.csv_bytes()
    for reopened in (ResultArtifact.mmap(target), ResultArtifact.load(target)):
        assert reopened.n == artifact.n and reopened.g == artifact.g
        assert reopened.header == artifact.header
        assert reopened.rows() == artifact.rows()
        assert reopened.csv_bytes() == expected


def test_save_reports_on_disk_bytes(published, tmp_path):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    target = tmp_path / "result"
    size = artifact.save(target)
    assert size == sum(child.stat().st_size for child in target.iterdir())


def test_missing_directory_is_a_data_source_error(tmp_path):
    with pytest.raises(DataSourceError):
        ResultArtifact.mmap(tmp_path / "nope")
    assert not ResultArtifact.is_artifact_dir(tmp_path / "nope")


def test_foreign_meta_is_rejected(published, tmp_path):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    target = tmp_path / "result"
    artifact.save(target)
    meta = json.loads((target / RESULT_META_FILE).read_text())
    meta["format"] = "something-else"
    (target / RESULT_META_FILE).write_text(json.dumps(meta))
    with pytest.raises(DataSourceError):
        ResultArtifact.load(target)


def test_meta_row_count_mismatch_is_rejected(published, tmp_path):
    _, generalized = published
    artifact = ResultArtifact.from_generalized(generalized)
    target = tmp_path / "result"
    artifact.save(target)
    meta = json.loads((target / RESULT_META_FILE).read_text())
    meta["n"] = meta["n"] + 1
    (target / RESULT_META_FILE).write_text(json.dumps(meta))
    with pytest.raises(DataSourceError):
        ResultArtifact.load(target)
