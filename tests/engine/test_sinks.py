"""Tests for the incremental CsvSink output adapter."""

from __future__ import annotations

import csv

import pytest

from repro.engine import CsvSink, Engine, ResultCache, TableSource, RunPlan
from repro.engine.sinks import render_cell_value


def _generalized(table, algorithm="TP", l=2):
    report = Engine(cache=ResultCache()).run(
        RunPlan(source=TableSource(table), algorithm=algorithm, l=l)
    )
    return report.generalized


class TestRenderCellValue:
    def test_plain_values_pass_through(self):
        assert render_cell_value("Flu") == "Flu"
        assert render_cell_value(7) == 7
        assert render_cell_value("*") == "*"

    def test_subdomains_render_as_braced_unions(self):
        assert render_cell_value(("a", "b")) == "{a|b}"
        assert render_cell_value((1, 2, 3)) == "{1|2|3}"


class TestCsvSink:
    def test_single_batch_export(self, hospital, tmp_path):
        generalized = _generalized(hospital)
        path = tmp_path / "published.csv"
        with CsvSink(path) as sink:
            written = sink.write_table(generalized)
        assert written == len(hospital) == sink.rows_written
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(hospital)
        assert any("*" in row.values() for row in rows)  # stars rendered

    def test_incremental_batches_equal_one_shot(self, hospital, tmp_path):
        generalized = _generalized(hospital)
        one_shot = tmp_path / "one.csv"
        incremental = tmp_path / "two.csv"
        with CsvSink(one_shot) as sink:
            sink.write_table(generalized)
            sink.write_table(generalized)
        with CsvSink(incremental) as sink:
            sink.open(generalized.schema)
            for _ in range(2):
                sink.write_table(generalized)
        assert one_shot.read_text() == incremental.read_text()
        assert sum(1 for _ in open(incremental)) == 2 * len(hospital) + 1

    def test_subdomain_cells_exported(self, hospital, tmp_path):
        generalized = _generalized(hospital, algorithm="Mondrian")
        path = tmp_path / "mondrian.csv"
        with CsvSink(path) as sink:
            sink.write_table(generalized)
        content = path.read_text()
        assert "{" in content and "|" in content  # at least one sub-domain cell

    def test_double_open_rejected(self, hospital, tmp_path):
        generalized = _generalized(hospital)
        with CsvSink(tmp_path / "x.csv") as sink:
            sink.open(generalized.schema)
            with pytest.raises(ValueError, match="already open"):
                sink.open(generalized.schema)

    def test_header_matches_schema(self, hospital, tmp_path):
        generalized = _generalized(hospital)
        path = tmp_path / "h.csv"
        with CsvSink(path) as sink:
            sink.open(generalized.schema)
        header = path.read_text().strip().split(",")
        assert header == list(generalized.schema.qi_names) + [
            generalized.schema.sensitive.name
        ]
