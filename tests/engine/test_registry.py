"""Tests for the algorithm / metric registries."""

from __future__ import annotations

import pytest

from repro.dataset.generalized import GeneralizedTable, Partition
from repro.engine.registry import (
    AlgorithmInfo,
    AlgorithmOutput,
    AlgorithmRegistry,
    Anonymizer,
    MetricRegistry,
    algorithm_registry,
    metric_registry,
)
from repro.errors import DuplicateRegistrationError, RegistryError, UnknownEntryError


def _identity_runner(table, l):
    return AlgorithmOutput(
        GeneralizedTable.from_partition(table, Partition.single_group(len(table)))
    )


class TestAlgorithmRegistry:
    def test_builtins_registered(self):
        assert set(algorithm_registry.names()) == {"TP", "TP+", "Hilbert", "TDS", "Mondrian"}

    def test_get_returns_info_with_metadata(self):
        info = algorithm_registry.get("TP")
        assert isinstance(info, AlgorithmInfo)
        assert info.supports_sharding
        assert info.deterministic
        assert "l" in info.approximation

    def test_unknown_lookup_raises_and_names_candidates(self):
        with pytest.raises(UnknownEntryError, match="Mondrian"):
            algorithm_registry.get("nope")

    def test_unknown_lookup_is_a_key_error(self):
        with pytest.raises(KeyError):
            algorithm_registry.get("nope")

    def test_duplicate_registration_raises(self):
        registry = AlgorithmRegistry()
        registry.register("X")(_identity_runner)
        with pytest.raises(DuplicateRegistrationError):
            registry.register("X")(_identity_runner)

    def test_duplicate_error_is_registry_and_value_error(self):
        registry = AlgorithmRegistry()
        registry.register("X")(_identity_runner)
        with pytest.raises(RegistryError):
            registry.register("X")(_identity_runner)
        with pytest.raises(ValueError):
            registry.register("X")(_identity_runner)

    def test_registered_runner_satisfies_protocol_and_runs(self, hospital):
        registry = AlgorithmRegistry()
        registry.register("Identity", complexity="O(n)")(_identity_runner)
        info = registry.get("Identity")
        assert isinstance(info.runner, Anonymizer)
        output = info(hospital, 2)
        assert len(output.generalized) == len(hospital)

    def test_runner_view_is_live(self, hospital):
        registry = AlgorithmRegistry()
        view = registry.runners()
        assert len(view) == 0 and "Identity" not in view
        registry.register("Identity")(_identity_runner)
        assert "Identity" in view
        assert set(view) == {"Identity"}
        assert view["Identity"] is _identity_runner

    def test_runner_view_unknown_key(self):
        with pytest.raises(KeyError):
            AlgorithmRegistry().runners()["nope"]

    def test_contains_iter_len(self):
        assert "TP" in algorithm_registry
        assert "nope" not in algorithm_registry
        assert list(algorithm_registry) == sorted(algorithm_registry.names())
        assert len(algorithm_registry) == 5


class TestMetricRegistry:
    def test_builtins_registered(self):
        expected = {
            "stars", "suppressed", "suppression_ratio", "ncp", "gcp",
            "discernibility", "average_group_size", "kl",
        }
        assert set(metric_registry.names()) == expected

    def test_compute_dispatches_published_only_metric(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition.single_group(len(hospital))
        )
        value = metric_registry.compute("stars", hospital, generalized)
        assert value == generalized.star_count()

    def test_compute_dispatches_source_needing_metric(self, hospital):
        generalized = GeneralizedTable.from_partition(
            hospital, Partition.by_qi(hospital)
        )
        assert metric_registry.get("kl").needs_source
        assert metric_registry.compute("kl", hospital, generalized) == pytest.approx(0.0)

    def test_unknown_metric_raises(self, hospital):
        with pytest.raises(UnknownEntryError):
            metric_registry.compute("nope", hospital, None)

    def test_duplicate_metric_registration_raises(self):
        registry = MetricRegistry()
        registry.register("m")(lambda generalized: 0.0)
        with pytest.raises(DuplicateRegistrationError):
            registry.register("m")(lambda generalized: 1.0)
