"""Tests for the Engine executor: plans, caching, sharded runs."""

from __future__ import annotations

import pytest

from repro.dataset.synthetic import CensusConfig
from repro.engine import (
    AlgorithmRegistry,
    CsvSource,
    Engine,
    ResultCache,
    RunPlan,
    SyntheticSource,
    TableSource,
    suppression_merge_bound,
)
from repro.engine.registry import algorithm_registry
from repro.errors import IneligibleTableError, UnknownEntryError
from repro.privacy import checks, principles
from repro.privacy.spec import (
    AlphaKAnonymity,
    EntropyLDiversity,
    FrequencyLDiversity,
    KAnonymity,
    RecursiveCLDiversity,
    TCloseness,
)


def _plan(source, **fields) -> RunPlan:
    fields.setdefault("algorithm", "TP")
    fields.setdefault("l", 2)
    return RunPlan(source=source, **fields)


def _engine() -> Engine:
    """An engine with an isolated cache (tests must not share hits)."""
    return Engine(cache=ResultCache())


class TestUnshardedRuns:
    def test_run_matches_direct_runner(self, hospital):
        report = _engine().run(_plan(TableSource(hospital, "hospital")))
        direct = algorithm_registry.get("TP").runner(hospital, 2)
        assert report.generalized.cell_rows == direct.generalized.cell_rows
        assert report.label == "hospital"
        assert report.n == len(hospital)
        assert report.d == hospital.dimension
        assert report.shard_sizes == (len(hospital),)
        assert report.verified

    def test_unknown_algorithm_fails_before_loading(self, tmp_path):
        source = CsvSource(str(tmp_path / "absent.csv"), ("Q",), "S")
        with pytest.raises(UnknownEntryError):
            _engine().run(_plan(source, algorithm="nope"))

    def test_unknown_metric_fails_before_loading(self, tmp_path):
        source = CsvSource(str(tmp_path / "absent.csv"), ("Q",), "S")
        with pytest.raises(UnknownEntryError):
            _engine().run(_plan(source, metrics=("nope",)))

    def test_requested_metrics_are_computed(self, hospital):
        report = _engine().run(
            _plan(TableSource(hospital), metrics=("stars", "suppressed", "kl"))
        )
        assert report.metric_values["stars"] == report.generalized.star_count()
        assert report.metric_values["suppressed"] == report.generalized.suppressed_tuple_count()
        assert report.metric_values["kl"] >= 0.0

    def test_ineligible_table_raises(self, hospital):
        with pytest.raises(IneligibleTableError):
            _engine().run(_plan(TableSource(hospital), l=len(hospital) + 1))

    def test_stage_timings_are_separated(self, hospital):
        report = _engine().run(_plan(TableSource(hospital), metrics=("kl",)))
        timings = report.timings
        assert timings.load_seconds >= 0
        assert timings.anonymize_seconds > 0
        assert timings.metrics_seconds > 0
        assert timings.total_seconds == pytest.approx(
            timings.load_seconds + timings.anonymize_seconds + timings.metrics_seconds
        )

    def test_chunked_load_equals_plain_load(self, tmp_path, hospital):
        path = str(tmp_path / "hospital.csv")
        hospital.to_csv(path)
        source = CsvSource(path, ("Age", "Gender", "Education"), "Disease")
        plain = _engine().run(_plan(source))
        chunked = _engine().run(_plan(source, chunk_rows=3))
        assert plain.generalized.cell_rows == chunked.generalized.cell_rows

    def test_run_table_convenience(self, hospital):
        report = _engine().run_table(hospital, "TP+", 2)
        assert report.plan.algorithm == "TP+"
        assert report.verified


class TestResultCache:
    def test_second_run_hits_and_replays_identical_output(self, hospital):
        engine = _engine()
        first = engine.run(_plan(TableSource(hospital)))
        second = engine.run(_plan(TableSource(hospital)))
        assert not first.cache_hit
        assert second.cache_hit
        assert second.generalized is first.generalized
        assert second.timings.anonymize_seconds == first.timings.anonymize_seconds
        assert engine.cache.stats()["hits"] == 1

    def test_cache_key_includes_l_algorithm_and_shards(self, small_census):
        engine = _engine()
        source = TableSource(small_census)
        engine.run(_plan(source, l=2))
        assert engine.run(_plan(source, l=3)).cache_hit is False
        assert engine.run(_plan(source, algorithm="Hilbert", l=2)).cache_hit is False
        assert engine.run(_plan(source, l=2, shards=2)).cache_hit is False
        assert engine.run(_plan(source, l=2)).cache_hit is True

    def test_use_cache_false_bypasses(self, hospital):
        engine = _engine()
        engine.run(_plan(TableSource(hospital)))
        report = engine.run(_plan(TableSource(hospital), use_cache=False))
        assert not report.cache_hit

    def test_equal_content_different_instances_share_entries(self, hospital):
        engine = _engine()
        copy = hospital.subset(range(len(hospital)))
        engine.run(_plan(TableSource(hospital)))
        assert engine.run(_plan(TableSource(copy))).cache_hit

    def test_nondeterministic_algorithms_are_not_cached(self, hospital):
        registry = AlgorithmRegistry()
        runner = algorithm_registry.get("TP").runner
        registry.register("Rand", deterministic=False)(runner)
        engine = Engine(algorithms=registry, cache=ResultCache())
        engine.run(_plan(TableSource(hospital), algorithm="Rand"))
        report = engine.run(_plan(TableSource(hospital), algorithm="Rand"))
        assert not report.cache_hit
        assert len(engine.cache) == 0

    def test_lru_bound_evicts(self, hospital):
        engine = Engine(cache=ResultCache(max_entries=1))
        engine.run(_plan(TableSource(hospital), l=2))
        engine.run(_plan(TableSource(hospital), algorithm="Hilbert", l=2))
        assert len(engine.cache) == 1
        assert not engine.run(_plan(TableSource(hospital), l=2)).cache_hit


class TestShardedRuns:
    @pytest.fixture(scope="class")
    def census_source(self):
        # The acceptance-scale workload: n >= 10k rows, 4-QI projection.
        return SyntheticSource(
            "SAL", n=10_000, seed=7, dimension=4, config=CensusConfig.scaled(0.3)
        )

    def test_acceptance_run(self, census_source):
        """Sharded run at n >= 10k with >= 4 shards: verified l-diverse output
        whose suppression matches the unsharded run within the merge bound."""
        engine = _engine()
        l = 4
        unsharded = engine.run(_plan(census_source, l=l, use_cache=False))
        sharded = engine.run(_plan(census_source, l=l, shards=4, use_cache=False))
        assert len(sharded.shard_sizes) >= 4
        assert sharded.n >= 10_000
        assert checks.verify_l_diversity(sharded.generalized, l)
        assert sharded.verified
        stars_delta = abs(
            sharded.generalized.star_count() - unsharded.generalized.star_count()
        )
        tuples_delta = abs(
            sharded.generalized.suppressed_tuple_count()
            - unsharded.generalized.suppressed_tuple_count()
        )
        assert stars_delta <= suppression_merge_bound(4, l, sharded.d)
        assert tuples_delta <= suppression_merge_bound(4, l)

    def test_workers_match_sequential_sharded_run(self, census_source):
        engine = _engine()
        sequential = engine.run(_plan(census_source, l=4, shards=4, use_cache=False))
        parallel = engine.run(
            _plan(census_source, l=4, shards=4, workers=2, use_cache=False)
        )
        assert parallel.generalized.cell_rows == sequential.generalized.cell_rows
        assert parallel.shard_sizes == sequential.shard_sizes

    @pytest.mark.parametrize("algorithm", ["TP", "TP+", "Hilbert", "TDS", "Mondrian"])
    def test_all_registered_algorithms_run_sharded(self, small_census, algorithm):
        report = _engine().run(
            _plan(TableSource(small_census), algorithm=algorithm, l=2, shards=2)
        )
        assert report.verified
        assert len(report.shard_sizes) >= 1

    def test_sharding_refused_without_capability(self, hospital):
        registry = AlgorithmRegistry()
        runner = algorithm_registry.get("TP").runner
        registry.register("NoShard", supports_sharding=False)(runner)
        engine = Engine(algorithms=registry, cache=ResultCache())
        with pytest.raises(ValueError, match="NoShard"):
            engine.run(_plan(TableSource(hospital), algorithm="NoShard", shards=2))

    def test_cached_sharded_replay_keeps_shard_sizes(self, small_census):
        engine = _engine()
        first = engine.run(_plan(TableSource(small_census), shards=2))
        replay = engine.run(_plan(TableSource(small_census), shards=2))
        assert replay.cache_hit
        assert replay.shard_sizes == first.shard_sizes
        assert len(replay.shard_sizes) == 2

    def test_phase_reached_aggregates_over_shards(self, census_source):
        report = _engine().run(_plan(census_source, l=4, shards=4, use_cache=False))
        assert report.phase_reached in (1, 2, 3)


class TestHarnessIntegration:
    def test_run_algorithm_uses_shared_cache(self, hospital):
        from repro.experiments.harness import run_algorithm

        cache = ResultCache()
        first = run_algorithm("TP", hospital, 2, cache=cache)
        second = run_algorithm("TP", hospital, 2, cache=cache)
        assert cache.stats()["hits"] == 1
        assert second.stars == first.stars
        assert second.seconds == first.seconds  # replayed timing, not re-run

    def test_run_suite_parallel_answers_hits_in_parent(self, hospital):
        from repro.experiments.harness import run_suite

        cache = ResultCache()
        sequential = run_suite([("h", hospital)], 2, ["TP", "Hilbert"], cache=cache)
        hits_before = cache.stats()["hits"]
        parallel = run_suite(
            [("h", hospital)], 2, ["TP", "Hilbert"], workers=2, cache=cache
        )
        assert cache.stats()["hits"] == hits_before + 2
        assert [record.stars for record in parallel] == [
            record.stars for record in sequential
        ]

    def test_run_suite_parallel_fills_parent_cache(self, hospital):
        from repro.experiments.harness import run_suite

        cache = ResultCache()
        run_suite([("h", hospital)], 2, ["TP", "Hilbert"], workers=2, cache=cache)
        assert cache.stats()["entries"] == 2  # worker outputs shipped back
        repeat = run_suite([("h", hospital)], 2, ["TP", "Hilbert"], workers=2, cache=cache)
        assert cache.stats()["misses"] == 2  # second sweep is all hits
        assert len(repeat) == 2


class TestCacheKeyBackendAndSeed:
    """Regression: toggling repro.backend or the seed must never replay stale runs."""

    def test_backend_toggle_misses_the_cache(self, hospital):
        from repro.backend import use_backend

        engine = _engine()
        first = engine.run(_plan(TableSource(hospital)))
        assert not first.cache_hit
        with use_backend("reference"):
            second = engine.run(_plan(TableSource(hospital)))
        assert not second.cache_hit  # stale numpy-backend entry must not answer
        third = engine.run(_plan(TableSource(hospital)))
        assert third.cache_hit  # back on numpy: the original entry answers

    def test_explicit_plan_backend_is_part_of_the_key(self, hospital):
        engine = _engine()
        engine.run(_plan(TableSource(hospital), backend="numpy"))
        report = engine.run(_plan(TableSource(hospital), backend="reference"))
        assert not report.cache_hit

    def test_seed_is_part_of_the_key(self, hospital):
        engine = _engine()
        engine.run(_plan(TableSource(hospital), seed=0))
        assert not engine.run(_plan(TableSource(hospital), seed=1)).cache_hit
        assert engine.run(_plan(TableSource(hospital), seed=0)).cache_hit


class TestStoreBackedEngine:
    def test_fresh_engine_is_served_from_the_store(self, hospital, tmp_path):
        from repro.service.store import RunStore

        path = tmp_path / "runs.jsonl"
        first = Engine(cache=ResultCache(store=RunStore(path))).run(
            _plan(TableSource(hospital))
        )
        assert not first.cache_hit
        # Fresh engine + fresh cache + fresh store instance = fresh process.
        replay = Engine(cache=ResultCache(store=RunStore(path))).run(
            _plan(TableSource(hospital))
        )
        assert replay.cache_hit
        assert replay.store_hit
        assert replay.generalized.cell_rows == first.generalized.cell_rows
        assert replay.timings.anonymize_seconds == first.timings.anonymize_seconds

    def test_engine_store_argument_wires_the_cache(self, hospital, tmp_path):
        from repro.service.store import RunStore

        store = RunStore(tmp_path / "runs.jsonl")
        engine = Engine(store=store)
        engine.run(_plan(TableSource(hospital)))
        assert len(store) == 1

    def test_conflicting_cache_and_store_rejected(self, tmp_path):
        from repro.service.store import RunStore

        store = RunStore(tmp_path / "runs.jsonl")
        with pytest.raises(ValueError, match="cache"):
            Engine(cache=ResultCache(), store=store)
        # A cache already backed by that store is fine.
        Engine(cache=ResultCache(store=store), store=store)

    def test_report_surfaces_cache_stats(self, hospital):
        engine = _engine()
        first = engine.run(_plan(TableSource(hospital)))
        assert first.cache_stats["misses"] == 1
        second = engine.run(_plan(TableSource(hospital)))
        assert second.cache_stats["memory_hits"] == 1
        assert second.cache_stats["hits"] == 1
        assert not second.store_hit  # memory tier, not the persistent one


class TestPlannerIntegration:
    def test_default_plan_resolves_small_tables_unsharded(self, hospital):
        report = _engine().run(_plan(TableSource(hospital)))
        assert report.decision is not None
        assert report.decision.shards == 1
        assert report.decision.workers == 1
        assert report.shard_sizes == (len(hospital),)

    def test_explicit_shards_override_the_planner(self, small_census):
        report = _engine().run(_plan(TableSource(small_census), shards=2))
        assert report.decision is not None
        assert report.decision.shards == 2
        assert len(report.shard_sizes) == 2

    def test_pinned_planner_is_used(self):
        from repro.service.planner import ExecutionPlanner, PlannerCalibration

        # A calibration so slow that 10k rows justify sharding even without
        # workers (the per-shard log factor dominates the tiny overheads).
        slow = PlannerCalibration(rates={"numpy": {"TP": 1.0}}, source="test")
        engine = Engine(cache=ResultCache(), planner=ExecutionPlanner(slow, cpu_count=1))
        source = SyntheticSource(
            "SAL", n=10_000, seed=7, dimension=4, config=CensusConfig.scaled(0.3)
        )
        report = engine.run(_plan(source, l=4))
        assert report.decision.shards > 1
        assert len(report.shard_sizes) > 1
        assert report.verified

    def test_plan_backend_runs_on_that_backend(self, hospital):
        report = _engine().run(_plan(TableSource(hospital), backend="reference"))
        assert report.decision.backend == "reference"
        assert report.verified


class TestPrivacySpecs:
    """The PrivacySpec refactor: spec-targeted runs, bit-identical default
    path, enforcement, and cache-key separation across specs."""

    def test_default_path_is_identical_to_explicit_frequency_spec(self, hospital):
        sugar = _engine().run(_plan(TableSource(hospital), l=2))
        explicit = _engine().run(
            _plan(TableSource(hospital), privacy=FrequencyLDiversity(2))
        )
        assert sugar.generalized.cell_rows == explicit.generalized.cell_rows
        assert sugar.generalized.group_ids == explicit.generalized.group_ids
        assert sugar.privacy == explicit.privacy == FrequencyLDiversity(2)
        assert sugar.enforcement_merges == explicit.enforcement_merges == 0

    def test_entropy_run_end_to_end(self, small_census):
        report = _engine().run(
            _plan(
                TableSource(small_census),
                algorithm="TP+",
                privacy=EntropyLDiversity(3.0),
            )
        )
        assert report.verified
        assert principles.satisfies_entropy_l_diversity(report.generalized, 3.0)
        assert report.privacy == EntropyLDiversity(3.0)

    def test_entropy_run_sharded(self, small_census):
        report = _engine().run(
            _plan(
                TableSource(small_census),
                algorithm="TP",
                privacy=EntropyLDiversity(2.0),
                shards=3,
                workers=1,
            )
        )
        assert len(report.shard_sizes) > 1
        assert report.verified
        assert principles.satisfies_entropy_l_diversity(report.generalized, 2.0)

    def test_strict_recursive_spec_triggers_the_enforcement_pass(self, small_census):
        # c <= 1 is NOT implied by the frequency guarantee the algorithms
        # produce, so the post-anonymization repair must merge groups.
        spec = RecursiveCLDiversity(0.5, 2)
        report = _engine().run(
            _plan(TableSource(small_census), algorithm="TP", privacy=spec)
        )
        assert report.enforcement_merges > 0
        assert report.verified
        assert principles.satisfies_recursive_cl_diversity(report.generalized, 0.5, 2)
        assert sorted(report.generalized.sa_values) == sorted(small_census.sa_values)

    def test_alpha_k_run(self, small_census):
        report = _engine().run(
            _plan(TableSource(small_census), privacy=AlphaKAnonymity(0.25, 4))
        )
        assert report.verified
        assert principles.satisfies_alpha_k_anonymity(report.generalized, 0.25, 4)

    def test_k_anonymity_is_sa_blind(self, hospital):
        # A single-valued SA column is never frequency-2-eligible, but
        # k-anonymity must still anonymize it (SA plays no role).
        from repro.dataset.table import Table

        skewed = Table(hospital.schema, hospital.qi_rows, [0] * len(hospital))
        with pytest.raises(IneligibleTableError):
            _engine().run(_plan(TableSource(skewed), l=2))
        report = _engine().run(_plan(TableSource(skewed), privacy=KAnonymity(3)))
        assert report.verified
        assert report.generalized.is_k_anonymous(3)
        assert set(report.generalized.sa_values) == {0}  # SA column preserved

    def test_check_only_spec_is_rejected(self, hospital):
        with pytest.raises(ValueError, match="check-only"):
            _engine().run(_plan(TableSource(hospital), privacy=TCloseness(0.3)))

    def test_ineligible_spec_raises(self, hospital):
        # Whole-table SA entropy bounds the achievable entropy threshold.
        with pytest.raises(IneligibleTableError):
            _engine().run(
                _plan(TableSource(hospital), privacy=EntropyLDiversity(1000.0))
            )

    def test_cache_keys_distinguish_specs_with_equal_l(self, small_census):
        engine = _engine()
        source = TableSource(small_census)
        engine.run(_plan(source, l=2))
        entropy = engine.run(_plan(source, privacy=EntropyLDiversity(2.0)))
        assert not entropy.cache_hit  # would have replayed pre-refactor
        recursive = engine.run(_plan(source, privacy=RecursiveCLDiversity(2.0, 2)))
        assert not recursive.cache_hit
        assert engine.run(_plan(source, l=2)).cache_hit
        assert engine.run(_plan(source, privacy=EntropyLDiversity(2.0))).cache_hit

    def test_spec_dict_encoding_accepted_by_runplan(self, hospital):
        report = _engine().run(
            _plan(TableSource(hospital), privacy={"kind": "k-anonymity", "k": 2})
        )
        assert report.privacy == KAnonymity(2)
        assert report.generalized.is_k_anonymous(2)

    def test_spec_merge_bound_uses_the_group_floor(self):
        assert suppression_merge_bound(4, KAnonymity(5), 2) == 2 * 3 * 5 * 2
        assert suppression_merge_bound(4, EntropyLDiversity(2.5)) == 2 * 3 * 3
        assert suppression_merge_bound(4, 3, 2) == suppression_merge_bound(
            4, FrequencyLDiversity(3), 2
        )

    def test_implied_spec_violation_fails_verification_not_repaired(self, hospital):
        # A broken algorithm whose output violates an implied spec must
        # surface as VerificationError — the enforcement pass must not
        # silently merge the evidence away.
        from repro.dataset.generalized import GeneralizedTable, Partition
        from repro.engine.registry import AlgorithmOutput
        from repro.errors import VerificationError

        registry = AlgorithmRegistry()

        @registry.register("Broken")
        def _broken(table, l):
            # one row per group: trivially violates any diversity/size spec
            partition = Partition([[index] for index in range(len(table))], len(table))
            return AlgorithmOutput(GeneralizedTable.from_partition(table, partition))

        engine = Engine(algorithms=registry, cache=ResultCache())
        for privacy in (None, EntropyLDiversity(2.0), KAnonymity(2)):
            with pytest.raises(VerificationError):
                engine.run(
                    _plan(
                        TableSource(hospital), algorithm="Broken", l=2,
                        privacy=privacy, use_cache=False,
                    )
                )

    def test_cached_hits_replay_the_enforcement_merge_count(self, small_census):
        engine = _engine()
        spec = RecursiveCLDiversity(0.5, 2)
        first = engine.run(_plan(TableSource(small_census), privacy=spec))
        assert first.enforcement_merges > 0
        replay = engine.run(_plan(TableSource(small_census), privacy=spec))
        assert replay.cache_hit
        assert replay.enforcement_merges == first.enforcement_merges

    def test_cache_key_ignores_the_l_display_hint_under_an_explicit_spec(
        self, hospital
    ):
        # plan.l is only a display hint once privacy is explicit; different
        # hints (CLI vs HTTP defaults) must share one cache entry.
        engine = _engine()
        spec = KAnonymity(2)
        engine.run(_plan(TableSource(hospital), l=1, privacy=spec))
        hinted = engine.run(_plan(TableSource(hospital), l=2, privacy=spec))
        assert hinted.cache_hit
