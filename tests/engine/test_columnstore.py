"""ColumnStore: zero-copy layout, persistence round trips, mmap bit-identity."""

from __future__ import annotations

import json

import pytest

from repro.dataset.synthetic import CensusConfig, make_sal
from repro.engine import ColumnStore, ColumnStoreSource, CsvSource, concat_tables
from repro.engine.registry import algorithm_registry
from repro.engine.core import run_with_spec
from repro.errors import DataSourceError
from repro.privacy.spec import resolve_privacy


@pytest.fixture(scope="module")
def census():
    return make_sal(1200, seed=5, config=CensusConfig.scaled(0.2))


@pytest.fixture()
def store_dir(census, tmp_path):
    return ColumnStore.from_table(census).save(tmp_path / "store")


# ----------------------------------------------------------------- structure


def test_from_table_is_zero_copy(census):
    store = ColumnStore.from_table(census)
    assert store.qi is census.qi_columns
    assert store.sa is census.sa_array
    assert store.n == len(census)
    assert store.d == census.dimension
    assert not store.mmapped


def test_slice_shares_buffers(census):
    store = ColumnStore.from_table(census)
    view = store.slice(100, 300)
    assert view.n == 200
    assert view.qi.base is not None  # a view, not a copy
    assert view.table().fingerprint() == census.subset(range(100, 300)).fingerprint()


def test_take_and_iter_slices(census):
    store = ColumnStore.from_table(census)
    taken = store.take([7, 3, 11])
    assert taken.table().fingerprint() == census.subset([7, 3, 11]).fingerprint()
    pieces = list(store.iter_slices(500))
    assert [piece.n for piece in pieces] == [500, 500, 200]
    assert concat_tables([p.table() for p in pieces]).fingerprint() == census.fingerprint()
    with pytest.raises(ValueError):
        list(store.iter_slices(0))


def test_shape_validation(census):
    store = ColumnStore.from_table(census)
    with pytest.raises(ValueError):
        ColumnStore(census.schema, store.qi[:, :1], store.sa)
    with pytest.raises(ValueError):
        ColumnStore(census.schema, store.qi, store.sa[:-1])


# --------------------------------------------------------------- persistence


def test_save_mmap_load_round_trip(census, store_dir):
    assert ColumnStore.is_store_dir(store_dir)
    mapped = ColumnStore.mmap(store_dir)
    assert mapped.mmapped
    loaded = ColumnStore.load(store_dir)
    assert not loaded.mmapped
    assert mapped.fingerprint() == census.fingerprint()
    assert loaded.fingerprint() == census.fingerprint()
    assert mapped.schema == census.schema


def test_mmap_missing_or_corrupt_dir(tmp_path):
    assert not ColumnStore.is_store_dir(tmp_path / "nope")
    with pytest.raises(DataSourceError):
        ColumnStore.mmap(tmp_path / "nope")
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "schema.json").write_text("{not json")
    with pytest.raises(DataSourceError):
        ColumnStore.mmap(bad)


def test_mmap_rejects_row_count_mismatch(census, store_dir):
    payload = json.loads((store_dir / "schema.json").read_text())
    payload["n"] = payload["n"] + 1
    (store_dir / "schema.json").write_text(json.dumps(payload))
    with pytest.raises(DataSourceError):
        ColumnStore.mmap(store_dir)


def test_from_csv_and_convert_csv_match_csv_source(census, tmp_path):
    csv_path = tmp_path / "data.csv"
    census.to_csv(str(csv_path))
    qi = tuple(census.schema.qi_names)
    sa = census.schema.sensitive.name
    baseline = CsvSource(str(csv_path), qi, sa).load()

    in_memory = ColumnStore.from_csv(csv_path, qi, sa, chunk_rows=321)
    assert in_memory.fingerprint() == baseline.fingerprint()

    converted = ColumnStore.convert_csv(
        csv_path, tmp_path / "store", qi, sa, chunk_rows=321
    )
    assert converted.mmapped
    assert converted.fingerprint() == baseline.fingerprint()


def test_convert_csv_rejects_empty(tmp_path):
    csv_path = tmp_path / "empty.csv"
    csv_path.write_text("a,b,s\n")
    with pytest.raises(DataSourceError):
        ColumnStore.convert_csv(csv_path, tmp_path / "store", ("a", "b"), "s")


# -------------------------------------------------------------------- source


def test_source_contract(census, store_dir):
    source = ColumnStoreSource(str(store_dir))
    assert source.label == str(store_dir)
    assert source.load().fingerprint() == census.fingerprint()
    chunks = list(source.iter_chunks(499))
    assert sum(len(chunk) for chunk in chunks) == len(census)
    assert concat_tables(chunks).fingerprint() == census.fingerprint()
    with pytest.raises(ValueError):
        list(source.iter_chunks(0))
    in_memory = ColumnStoreSource(str(store_dir), mmap=False)
    assert in_memory.load().fingerprint() == census.fingerprint()


# -------------------------------------------------- mmap algorithm identity


SPECS = (
    {"kind": "frequency-l", "l": 3},
    {"kind": "entropy-l", "l": 2},
    {"kind": "recursive-cl", "c": 2.0, "l": 2},
    {"kind": "k-anonymity", "k": 3},
)


def test_mmap_table_matches_in_memory_table(census, store_dir):
    mapped = ColumnStore.mmap(store_dir).table()
    assert mapped.fingerprint() == census.fingerprint()
    assert mapped.group_by_qi() == census.group_by_qi()


@pytest.mark.parametrize(
    "algorithm", [info.name for info in algorithm_registry.entries()]
)
@pytest.mark.parametrize("spec_encoding", SPECS, ids=lambda spec: spec["kind"])
def test_every_algorithm_is_bit_identical_on_mmap(
    census, store_dir, algorithm, spec_encoding
):
    """The paper-level property: the storage layer is invisible to outputs.

    Every registered algorithm, run under every enforceable PrivacySpec
    family, must publish exactly the same generalization (same groups, same
    cells, same suppressed rows) whether the table lives in process memory
    or in memory-mapped column buffers.
    """
    spec = resolve_privacy(spec_encoding)
    runner = algorithm_registry.get(algorithm).runner
    mapped = ColumnStore.mmap(store_dir).table()

    expected = run_with_spec(runner, census, spec)
    actual = run_with_spec(runner, mapped, spec)
    assert actual.generalized.groups() == expected.generalized.groups()
    assert actual.generalized.star_count() == expected.generalized.star_count()
    assert (
        actual.generalized.suppressed_tuple_count()
        == expected.generalized.suppressed_tuple_count()
    )


# ------------------------------------------------------------ order sidecar


def test_order_cache_round_trip(census, store_dir):
    from repro.engine.columnstore import ORDER_FILE, ORDER_META_FILE, StoreOrderCache

    source = ColumnStoreSource(str(store_dir))
    cold = source.load()
    assert StoreOrderCache(store_dir).load(cold) is None  # nothing persisted yet
    context = cold.grouping()  # computes the sort and persists it
    assert (store_dir / ORDER_FILE).exists()
    assert (store_dir / ORDER_META_FILE).exists()

    warm = ColumnStoreSource(str(store_dir)).load()
    recovered = StoreOrderCache(store_dir).load(warm)
    assert recovered is not None
    assert recovered.tolist() == context.order.tolist()
    # The warm table's grouping is served from the sidecar, bit-identically.
    for fast, slow in zip(warm.grouping().arrays(), context.arrays()):
        assert fast.tolist() == slow.tolist()


def test_order_cache_warm_start_skips_the_sort(census, store_dir, monkeypatch):
    ColumnStoreSource(str(store_dir)).load().grouping()

    def boom(*args, **kwargs):  # pragma: no cover - the assertion below
        raise AssertionError("warm start re-sorted despite order.npy")

    monkeypatch.setattr("repro.core.grouping.sort_qi_sa", boom)
    warm = ColumnStoreSource(str(store_dir)).load()
    assert warm.grouping().n == len(census)


def test_order_cache_invalidated_by_buffer_rewrite(census, store_dir):
    from repro.engine.columnstore import QI_FILE, StoreOrderCache

    cold = ColumnStoreSource(str(store_dir)).load()
    cold.grouping()
    # Rewriting a stored buffer must change its freshness stamp and void the
    # sidecar (size changes are caught by st_size, same-size rewrites by
    # mtime_ns).
    import os

    qi_path = store_dir / QI_FILE
    payload = qi_path.read_bytes()
    qi_path.write_bytes(payload)
    stat = os.stat(qi_path)
    os.utime(qi_path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1))
    fresh = ColumnStoreSource(str(store_dir)).load()
    assert StoreOrderCache(store_dir).load(fresh) is None


def test_order_cache_rejects_schema_mismatch(census, store_dir, tmp_path):
    from repro.engine.columnstore import StoreOrderCache

    cold = ColumnStoreSource(str(store_dir)).load()
    cold.grouping()
    cache = StoreOrderCache(store_dir)

    other = make_sal(900, seed=5, config=CensusConfig.scaled(0.2))
    assert cache.load(other) is None  # row count differs

    subset = census.subset(range(len(census)))
    assert cache.load(subset) is not None  # same schema and n: accepted


def test_order_cache_rejects_corrupt_meta(census, store_dir):
    from repro.engine.columnstore import ORDER_META_FILE, StoreOrderCache

    cold = ColumnStoreSource(str(store_dir)).load()
    cold.grouping()
    (store_dir / ORDER_META_FILE).write_text("{not json")
    fresh = ColumnStoreSource(str(store_dir)).load()
    assert StoreOrderCache(store_dir).load(fresh) is None


def test_order_cache_fingerprint_mismatch_is_a_miss(census, store_dir):
    from repro.engine.columnstore import StoreOrderCache

    cold = ColumnStoreSource(str(store_dir)).load()
    cold.fingerprint()  # cache the fingerprint so store() records it
    cold.grouping()
    fresh = ColumnStoreSource(str(store_dir)).load()
    fresh._fingerprint = "not-the-real-fingerprint"
    assert StoreOrderCache(store_dir).load(fresh) is None
    # Without a cached fingerprint the check is skipped (opportunistic).
    lazy = ColumnStoreSource(str(store_dir)).load()
    assert StoreOrderCache(store_dir).load(lazy) is not None
