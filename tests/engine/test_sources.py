"""Tests for the dataset adapter layer."""

from __future__ import annotations

import pytest

from repro.dataset.examples import hospital_microdata
from repro.dataset.synthetic import CensusConfig
from repro.engine.sources import (
    CsvSource,
    SyntheticSource,
    TableSource,
    concat_tables,
    infer_csv_schema,
)
from repro.errors import DataSourceError

QI = ("Age", "Gender", "Education")
SA = "Disease"


@pytest.fixture
def hospital_csv(tmp_path):
    path = tmp_path / "hospital.csv"
    hospital_microdata().to_csv(str(path))
    return str(path)


class TestCsvSource:
    def test_load_round_trips(self, hospital_csv):
        original = hospital_microdata()
        loaded = CsvSource(hospital_csv, QI, SA).load()
        assert len(loaded) == len(original)
        assert loaded.decoded_records() == original.decoded_records()

    def test_schema_inference_matches_observed_domains(self, hospital_csv):
        schema = infer_csv_schema(hospital_csv, QI, SA)
        assert schema.qi_names == QI
        assert schema.sensitive.name == SA
        table = hospital_microdata()
        for name in QI:
            observed = {str(record[name]) for record in table.decoded_records()}
            assert set(schema.qi_attribute(name).values) == observed

    def test_missing_column_raises(self, hospital_csv):
        with pytest.raises(DataSourceError, match="Nope"):
            infer_csv_schema(hospital_csv, ("Age", "Nope"), SA)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataSourceError):
            CsvSource(str(tmp_path / "absent.csv"), QI, SA).load()

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataSourceError):
            infer_csv_schema(str(path), QI, SA)

    @pytest.mark.parametrize("chunk_rows", [1, 3, 7, 10, 100])
    def test_chunked_read_equals_full_load(self, hospital_csv, chunk_rows):
        source = CsvSource(hospital_csv, QI, SA)
        chunks = list(source.iter_chunks(chunk_rows))
        assert all(len(chunk) <= chunk_rows for chunk in chunks)
        # All chunks share one schema object, so concatenation never re-encodes.
        assert all(chunk.schema == chunks[0].schema for chunk in chunks)
        reassembled = concat_tables(chunks)
        assert reassembled.fingerprint() == source.load().fingerprint()

    def test_chunk_rows_must_be_positive(self, hospital_csv):
        with pytest.raises(ValueError):
            list(CsvSource(hospital_csv, QI, SA).iter_chunks(0))

    def test_label_is_path(self, hospital_csv):
        assert CsvSource(hospital_csv, QI, SA).label == hospital_csv


class TestSyntheticSource:
    def test_load_is_deterministic(self):
        source = SyntheticSource("SAL", n=300, seed=5, config=CensusConfig.scaled(0.2))
        assert source.load().fingerprint() == source.load().fingerprint()

    def test_seed_changes_fingerprint(self):
        config = CensusConfig.scaled(0.2)
        a = SyntheticSource("SAL", n=300, seed=5, config=config).load()
        b = SyntheticSource("SAL", n=300, seed=6, config=config).load()
        assert a.fingerprint() != b.fingerprint()

    def test_projection_dimension(self):
        source = SyntheticSource("OCC", n=200, dimension=3, config=CensusConfig.scaled(0.2))
        table = source.load()
        assert table.dimension == 3
        assert source.label == "OCC-3@200"

    def test_unknown_dataset_raises(self):
        with pytest.raises(DataSourceError):
            SyntheticSource("XYZ", n=10)

    def test_default_chunking_slices(self):
        source = SyntheticSource("SAL", n=250, config=CensusConfig.scaled(0.2))
        chunks = list(source.iter_chunks(100))
        assert [len(chunk) for chunk in chunks] == [100, 100, 50]
        assert concat_tables(chunks).fingerprint() == source.load().fingerprint()


class TestTableSource:
    def test_wraps_table(self, hospital):
        source = TableSource(hospital, name="hospital")
        assert source.load() is hospital
        assert source.label == "hospital"


class TestConcatTables:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            concat_tables([])

    def test_rejects_mixed_schemas(self, hospital):
        other = SyntheticSource("SAL", n=50, config=CensusConfig.scaled(0.2)).load()
        with pytest.raises(DataSourceError):
            concat_tables([hospital, other])

    def test_single_chunk_is_identity(self, hospital):
        assert concat_tables([hospital]) is hospital
