"""Tests for QI-prefix sharding and shard-output merging."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dataset.synthetic import CensusConfig, make_sal
from repro.engine.registry import algorithm_registry
from repro.engine.sharding import (
    merge_shard_outputs,
    qi_prefix_shards,
    suppression_merge_bound,
)
from repro.errors import IneligibleTableError, ShardMergeError
from tests.strategies import eligible_tables


def _run_shards(table, shard_rows, l, algorithm="TP"):
    runner = algorithm_registry.get(algorithm).runner
    return [runner(table.subset(rows), l) for rows in shard_rows]


class TestQiPrefixShards:
    @given(table=eligible_tables(l=2), shard_count=st.integers(min_value=1, max_value=5))
    @settings(deadline=None, max_examples=60)
    def test_shards_partition_the_rows(self, table, shard_count):
        assume(table.is_l_eligible(2))
        shards = qi_prefix_shards(table, shard_count, 2)
        flattened = [index for shard in shards for index in shard]
        assert sorted(flattened) == list(range(len(table)))
        assert len(flattened) == len(set(flattened))

    @given(table=eligible_tables(l=2), shard_count=st.integers(min_value=2, max_value=5))
    @settings(deadline=None, max_examples=60)
    def test_shards_are_unions_of_complete_qi_groups(self, table, shard_count):
        assume(table.is_l_eligible(2))
        shards = qi_prefix_shards(table, shard_count, 2)
        shard_of = {index: i for i, shard in enumerate(shards) for index in shard}
        for rows in table.group_by_qi().values():
            assert len({shard_of[index] for index in rows}) == 1

    @given(table=eligible_tables(l=2), shard_count=st.integers(min_value=2, max_value=5))
    @settings(deadline=None, max_examples=60)
    def test_every_shard_is_l_eligible(self, table, shard_count):
        assume(table.is_l_eligible(2))
        for shard in qi_prefix_shards(table, shard_count, 2):
            counts = Counter(table.sa_value(index) for index in shard)
            assert max(counts.values()) * 2 <= len(shard)

    def test_single_shard_is_identity(self, hospital):
        assert qi_prefix_shards(hospital, 1, 2) == [list(range(len(hospital)))]

    def test_empty_table_yields_no_shards(self, hospital):
        assert qi_prefix_shards(hospital.subset([]), 3, 2) == []

    def test_ineligible_table_raises(self, hospital):
        with pytest.raises(IneligibleTableError):
            qi_prefix_shards(hospital, 2, len(hospital) + 1)

    def test_invalid_shard_count_raises(self, hospital):
        with pytest.raises(ValueError):
            qi_prefix_shards(hospital, 0, 2)

    def test_balanced_on_synthetic_table(self):
        table = make_sal(4000, seed=7, config=CensusConfig.scaled(0.3))
        shards = qi_prefix_shards(table, 4, 4)
        assert len(shards) == 4
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 0.2 * (len(table) / 4)


class TestMergeShardOutputs:
    @given(table=eligible_tables(l=2, max_rows=12), shard_count=st.integers(min_value=2, max_value=4))
    @settings(deadline=None, max_examples=40)
    def test_merge_preserves_l_diversity(self, table, shard_count):
        assume(table.is_l_eligible(2))
        l = 2
        shard_rows = qi_prefix_shards(table, shard_count, l)
        outputs = _run_shards(table, shard_rows, l)
        merged = merge_shard_outputs(table, shard_rows, outputs, l)
        assert merged.is_l_diverse(l)
        assert len(merged) == len(table)

    def test_merge_keeps_original_row_order(self, hospital):
        l = 2
        shard_rows = qi_prefix_shards(hospital, 2, l)
        outputs = _run_shards(hospital, shard_rows, l)
        merged = merge_shard_outputs(hospital, shard_rows, outputs, l)
        assert merged.sa_values == hospital.sa_values

    def test_merge_offsets_group_ids(self, hospital):
        l = 2
        shard_rows = qi_prefix_shards(hospital, 2, l)
        outputs = _run_shards(hospital, shard_rows, l)
        merged = merge_shard_outputs(hospital, shard_rows, outputs, l)
        assert len(merged.groups()) == sum(
            len(output.generalized.groups()) for output in outputs
        )

    def test_mismatched_lengths_raise(self, hospital):
        with pytest.raises(ValueError):
            merge_shard_outputs(hospital, [[0]], [], 2)

    def test_uncovered_rows_raise(self, hospital):
        l = 2
        shard_rows = qi_prefix_shards(hospital, 2, l)
        outputs = _run_shards(hospital, shard_rows, l)
        with pytest.raises(ShardMergeError):
            merge_shard_outputs(hospital, [shard_rows[0], shard_rows[0]], outputs, l)

    def test_suppression_within_documented_bound(self):
        table = make_sal(4000, seed=7, config=CensusConfig.scaled(0.3)).project(
            ("Age", "Gender", "Race", "Education")
        )
        l, shard_count = 4, 4
        runner = algorithm_registry.get("TP").runner
        unsharded = runner(table, l).generalized
        shard_rows = qi_prefix_shards(table, shard_count, l)
        outputs = _run_shards(table, shard_rows, l)
        merged = merge_shard_outputs(table, shard_rows, outputs, l)
        stars_bound = suppression_merge_bound(shard_count, l, table.dimension)
        tuples_bound = suppression_merge_bound(shard_count, l)
        assert abs(merged.star_count() - unsharded.star_count()) <= stars_bound
        assert (
            abs(merged.suppressed_tuple_count() - unsharded.suppressed_tuple_count())
            <= tuples_bound
        )
